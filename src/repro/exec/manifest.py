"""The resumable campaign manifest: an append-only JSONL cell journal.

A :class:`CampaignManifest` records what a campaign *intended* and what has
*happened* so far, one JSON line at a time:

* a ``campaign`` header line naming the campaign and its cell count;
* one ``pending`` line per cell, carrying the cell's content key, grid index
  and full canonical spec contents — which makes the manifest
  **self-contained**: a resume rebuilds every cell from the manifest alone,
  no grid flags needed;
* a ``done`` (or ``failed``) line per completion, appended as results land.

Appends are single ``O_APPEND`` line writes, so concurrent writers (pool
workers, Slurm array tasks journalling their own completions) interleave at
line granularity and a crash loses at most the final partial line —
:meth:`CampaignManifest.replay` skips malformed lines and takes the *last*
state recorded per key.

Resume semantics are deliberately thin: the manifest is the record of intent
and an audit trail, while the **content-addressed store tiers stay the
ground truth for what can be skipped**.  On resume the campaign re-runs its
normal warm scan, so exactly the cells whose content keys are missing from
the store tiers execute — a cell journalled ``done`` whose store entry was
deleted re-runs, and a cell another shard completed is skipped even if this
manifest never saw it finish.  That makes crash recovery free: kill the
campaign at any instant, re-run with ``--resume MANIFEST``, and only the
missing keys simulate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.campaign.spec import RunSpec

_log = get_logger("exec.manifest")

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "CampaignManifest",
    "ManifestState",
]

#: Bumped whenever the line layout changes; replay rejects other versions.
MANIFEST_VERSION = 1

PENDING = "pending"
DONE = "done"
FAILED = "failed"

_STATES = (PENDING, DONE, FAILED)


@dataclass
class ManifestState:
    """The replayed view of a manifest: last state per content key."""

    name: str = "campaign"
    total: int = 0
    #: key -> last recorded state (one of :data:`PENDING`/:data:`DONE`/
    #: :data:`FAILED`).
    states: dict = field(default_factory=dict)
    #: key -> the first ``pending`` line's ``{"index", "run"}`` payload (the
    #: cell's identity; later generations never change it).
    cells: dict = field(default_factory=dict)

    def runs(self) -> list["RunSpec"]:
        """Every recorded cell as a :class:`RunSpec`, in grid-index order."""
        from repro.results.store import spec_from_contents

        payloads = sorted(self.cells.values(), key=lambda c: c["index"])
        return [spec_from_contents(c["run"], index=c["index"]) for c in payloads]

    def keys_in_state(self, state: str) -> set[str]:
        return {key for key, s in self.states.items() if s == state}

    @property
    def done(self) -> set[str]:
        return self.keys_in_state(DONE)

    @property
    def unfinished(self) -> set[str]:
        """Keys whose last recorded state is not ``done``."""
        return {key for key, s in self.states.items() if s != DONE}


class CampaignManifest:
    """Append-only JSONL journal of one campaign's cells.

    The file is created lazily on the first append; :meth:`replay` of a
    missing file returns an empty state.  All writes are single appended
    lines (``sort_keys`` for deterministic field order), never rewrites.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    # -- writing -----------------------------------------------------------------

    def _append(self, payload: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(payload, sort_keys=True) + "\n")

    def begin(self, name: str, runs: Iterable["RunSpec"]) -> None:
        """Journal a (re)started campaign: header plus one ``pending`` line
        per cell **not already recorded** — restarting appends a fresh
        header but never duplicates cell identities or regresses a ``done``
        cell back to ``pending``."""
        from repro.results.store import content_key, spec_contents

        known = self.replay().cells if self.path.exists() else {}
        runs = list(runs)
        self._append(
            {
                "record": "campaign",
                "version": MANIFEST_VERSION,
                "name": name,
                "total": len(runs),
            }
        )
        fresh = 0
        for run in runs:
            key = content_key(run)
            if key in known:
                continue
            fresh += 1
            self._append(
                {
                    "record": "cell",
                    "state": PENDING,
                    "key": key,
                    "index": run.index,
                    "run": spec_contents(run),
                }
            )
        _log.info(
            "manifest %s: campaign %r with %d cell(s), %d newly journalled",
            self.path,
            name,
            len(runs),
            fresh,
        )

    def record(
        self,
        key: str,
        state: str,
        index: int | None = None,
        executor: str | None = None,
        cached: bool | None = None,
        error: str | None = None,
    ) -> None:
        """Append one cell-state transition."""
        if state not in _STATES:
            raise ValueError(f"unknown manifest state {state!r}")
        payload: dict = {"record": "cell", "state": state, "key": key}
        if index is not None:
            payload["index"] = index
        if executor is not None:
            payload["executor"] = executor
        if cached is not None:
            payload["cached"] = cached
        if error is not None:
            payload["error"] = error
        self._append(payload)

    # -- reading -----------------------------------------------------------------

    def replay(self) -> ManifestState:
        """Fold the journal into its current state (last line per key wins).

        Tolerant by design: a missing file is an empty state, malformed or
        truncated lines (a crash mid-append) are skipped, and unknown record
        types are ignored so the format can grow.
        """
        state = ManifestState()
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return state
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # truncated final line of a crashed writer
            if not isinstance(payload, dict):
                continue
            kind = payload.get("record")
            if kind == "campaign":
                if payload.get("version") != MANIFEST_VERSION:
                    raise ValueError(
                        f"manifest {self.path} has version "
                        f"{payload.get('version')!r}, expected {MANIFEST_VERSION}"
                    )
                state.name = payload.get("name", state.name)
                state.total = payload.get("total", state.total)
            elif kind == "cell":
                key = payload.get("key")
                cell_state = payload.get("state")
                if not key or cell_state not in _STATES:
                    continue
                state.states[key] = cell_state
                if "run" in payload and key not in state.cells:
                    state.cells[key] = {
                        "index": payload.get("index", 0),
                        "run": payload["run"],
                    }
        return state
