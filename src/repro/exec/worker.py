"""``python -m repro.exec.worker`` — self-contained cell execution.

One entry point, two modes, zero non-stdlib protocol dependencies — this is
what an :class:`~repro.exec.ssh.SSHExecutor` launches on a remote host and
what a Slurm array task runs on a compute node:

**Stream mode** (default, the SSH transport): JSONL requests on stdin, one
JSONL response per line on stdout, flushed per line so the driver can await
each result::

    {"op": "config", "store": "...", "trace_store": "...", "batching": true}
    {"op": "run", "index": 3, "run": {<canonical spec contents>}}
    {"op": "shutdown"}

Every ``run`` request executes one cell (writing the configured store tiers
locally — on a shared filesystem that *is* the campaign's cache) and
responds ``{"ok": true, "index": ..., "key": ..., "row": {...}}`` with the
metrics row in the store's exact serialisation, so the driver reconstructs
a byte-identical :class:`~repro.campaign.runner.RunMetrics`.  A cell that
raises responds ``{"ok": false, "index": ..., "error": "..."}`` and the
worker keeps serving — cell failures are transient, protocol failures are
fatal (non-zero exit).

**Batch mode** (Slurm array tasks): ``--cells FILE --index I [--offset K]``
executes line ``K + I`` of a cells file (one ``{"index", "run"}`` JSON
object per line, written by
:class:`~repro.exec.slurm.SlurmArrayExecutor.prepare`), writes the store
tiers, journals ``done``/``failed`` into ``--manifest``, and exits non-zero
on failure so Slurm's ``afterok`` dependency holds the summarize job back.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TextIO

__all__ = ["main", "serve_stream", "run_batch_cell"]


def _build_stores(store_root, trace_root):
    store = trace_store = None
    if store_root:
        from repro.results.store import ResultStore

        store = ResultStore(store_root)
    if trace_root:
        from repro.traces.store import TraceStore

        trace_store = TraceStore(trace_root)
    return store, trace_store


def _execute_cell(payload: dict, index: int, store, trace_store, batching: bool):
    """Run one cell from its canonical spec contents; returns the row."""
    from repro.campaign.runner import execute_run, summarise_run
    from repro.results.store import spec_from_contents

    run = spec_from_contents(payload, index=index)
    result = execute_run(
        run, trace=trace_store is not None, batching=batching
    )
    row = summarise_run(run, result)
    if store is not None:
        store.put(row)
    if trace_store is not None:
        trace_store.put(run, result)
    return run, row


def serve_stream(stdin: TextIO, stdout: TextIO) -> int:
    """The stream-mode request loop (stdin/stdout injectable for tests)."""
    from repro.results.store import content_key, metrics_to_payload

    store = trace_store = None
    batching = True

    def respond(payload: dict) -> None:
        stdout.write(json.dumps(payload, sort_keys=True) + "\n")
        stdout.flush()

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            op = request["op"]
        except (ValueError, KeyError, TypeError):
            respond({"ok": False, "error": f"malformed request line: {line[:200]!r}"})
            return 2
        if op == "config":
            try:
                store, trace_store = _build_stores(
                    request.get("store"), request.get("trace_store")
                )
                batching = bool(request.get("batching", True))
            except Exception as exc:
                respond({"ok": False, "op": "config", "error": f"{type(exc).__name__}: {exc}"})
                return 2
            respond({"ok": True, "op": "config"})
        elif op == "run":
            index = int(request.get("index", 0))
            try:
                run, row = _execute_cell(
                    request["run"], index, store, trace_store, batching
                )
            except Exception as exc:  # cell failure: report, keep serving
                respond(
                    {
                        "ok": False,
                        "index": index,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            else:
                respond(
                    {
                        "ok": True,
                        "index": index,
                        "key": content_key(run),
                        "row": metrics_to_payload(row),
                    }
                )
        elif op == "shutdown":
            respond({"ok": True, "op": "shutdown"})
            return 0
        else:
            respond({"ok": False, "error": f"unknown op {op!r}"})
            return 2
    return 0


def run_batch_cell(args: argparse.Namespace) -> int:
    """Batch mode: execute one line of a cells file (a Slurm array task)."""
    from repro.exec.manifest import DONE, FAILED, CampaignManifest
    from repro.results.store import content_key

    with open(args.cells, encoding="utf-8") as stream:
        cells = [json.loads(line) for line in stream if line.strip()]
    position = args.offset + args.index
    if not 0 <= position < len(cells):
        print(
            f"cell position {position} (offset {args.offset} + index "
            f"{args.index}) is outside the {len(cells)}-cell file",
            file=sys.stderr,
        )
        return 2
    cell = cells[position]
    store, trace_store = _build_stores(args.store, args.trace_store)
    manifest = CampaignManifest(args.manifest) if args.manifest else None
    index = int(cell.get("index", position))
    key = None
    try:
        run, row = _execute_cell(cell["run"], index, store, trace_store, True)
        key = content_key(run)
    except Exception as exc:
        if manifest is not None and key is None:
            key = cell.get("key", f"cell-{position}")
        if manifest is not None:
            manifest.record(
                key,
                FAILED,
                index=index,
                executor=f"slurm[{position}]",
                error=f"{type(exc).__name__}: {exc}",
            )
        print(f"cell {index:04d} failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if manifest is not None:
        manifest.record(key, DONE, index=index, executor=f"slurm[{position}]")
    print(
        json.dumps(
            {"ok": True, "index": index, "key": key, "run_id": run.run_id},
            sort_keys=True,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description=(
            "Self-contained campaign-cell worker: JSONL stream protocol on "
            "stdin/stdout (default), or one cell of a cells file in batch "
            "mode (--cells)."
        ),
    )
    parser.add_argument("--cells", default=None, metavar="FILE",
                        help="batch mode: JSONL cells file written by the "
                             "Slurm executor")
    parser.add_argument("--index", type=int, default=0, metavar="I",
                        help="batch mode: array task index within the chunk")
    parser.add_argument("--offset", type=int, default=0, metavar="K",
                        help="batch mode: chunk offset into the cells file")
    parser.add_argument("--store", default=None, metavar="ROOT",
                        help="batch mode: metrics-tier store root to write")
    parser.add_argument("--trace-store", default=None, metavar="ROOT",
                        help="batch mode: trace-tier store root to write")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="batch mode: campaign manifest to journal "
                             "done/failed into")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cells is not None:
        return run_batch_cell(args)
    return serve_stream(sys.stdin, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
