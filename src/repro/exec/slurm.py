"""Slurm array-job campaign submission.

Unlike the slot-driven backends (:mod:`repro.exec.local`,
:mod:`repro.exec.ssh`), Slurm campaigns are **fire-and-forget batch
submissions**: the driver does not stay alive while cells run, so there is
nothing for the asyncio orchestrator to deal cells to.
:class:`SlurmArrayExecutor` therefore splits the work into two explicit
steps:

:meth:`~SlurmArrayExecutor.prepare`
    Writes a self-contained submission directory: a ``cells.jsonl`` file
    (one canonical cell per line), the campaign manifest journalled with
    every cell ``pending``, one ``#SBATCH --array`` script per chunk of at
    most ``max_array_size`` cells (respecting Slurm's ``MaxArraySize``
    limit), and a ``summarize.sbatch`` that re-runs the campaign with
    ``--resume MANIFEST`` once every array job succeeds — by then every
    content key is in the store, so the "re-run" is a pure warm-scan
    aggregation.  All artifacts are deterministic bytes: re-preparing the
    same campaign into the same directory rewrites identical files.

:meth:`~SlurmArrayExecutor.submit`
    Feeds each array script to ``sbatch``, parses the ``Submitted batch job
    <id>`` replies, then submits the summarize job with
    ``--dependency=afterok:<id1>:<id2>:...`` chaining it behind every chunk
    (the classic array-plus-reduce idiom).  The sbatch invocation is
    injectable, so tests drive the full path with a stub.

Each array task runs ``python -m repro.exec.worker --cells ... --index
$SLURM_ARRAY_TASK_ID --offset <chunk offset>`` (batch mode,
:mod:`repro.exec.worker`): it executes exactly one cell, writes both store
tiers on the shared filesystem, journals ``done``/``failed`` into the
manifest, and exits non-zero on failure so ``afterok`` holds the summary
back.  Crash recovery is the manifest's usual contract: re-``prepare`` +
``submit`` (or a local ``--resume``) re-executes only the cells whose
content keys are missing from the store.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from repro.exec.manifest import CampaignManifest
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.campaign.spec import RunSpec

_log = get_logger("exec.slurm")

__all__ = ["SlurmArrayExecutor", "SlurmSubmission"]

_JOB_ID = re.compile(r"Submitted batch job (\d+)")


@dataclass(frozen=True)
class SlurmSubmission:
    """Everything :meth:`SlurmArrayExecutor.prepare` wrote to disk."""

    directory: Path
    cells_path: Path
    manifest_path: Path
    summarize_path: Path
    #: One ``(script path, cells-file offset, chunk size)`` per array job.
    chunks: tuple[tuple[Path, int, int], ...] = field(default_factory=tuple)
    total: int = 0

    @property
    def scripts(self) -> list[Path]:
        return [path for path, _, _ in self.chunks]


class SlurmArrayExecutor:
    """Campaign execution as chunked Slurm array jobs plus an ``afterok``
    summarize job.

    ``store`` (and optionally ``trace_store``) must live on a filesystem the
    compute nodes share — the array tasks write the tiers directly and the
    summarize job aggregates from them.
    """

    name = "slurm"

    def __init__(
        self,
        directory: str | os.PathLike,
        store_root: str | os.PathLike,
        trace_root: str | os.PathLike | None = None,
        python: str = "python3",
        repo_root: str | os.PathLike = ".",
        max_array_size: int = 1000,
        sbatch: str = "sbatch",
        sbatch_options: Iterable[str] = (),
    ) -> None:
        if max_array_size <= 0:
            raise ValueError("max_array_size must be positive")
        self.directory = Path(directory)
        self.store_root = Path(store_root)
        self.trace_root = Path(trace_root) if trace_root is not None else None
        self.python = python
        self.repo_root = Path(repo_root)
        self.max_array_size = max_array_size
        self.sbatch = sbatch
        self.sbatch_options = tuple(sbatch_options)

    # -- script generation -------------------------------------------------------

    def _header(self, job_name: str, extra: Iterable[str] = ()) -> list[str]:
        lines = ["#!/bin/bash", f"#SBATCH --job-name={job_name}"]
        lines.extend(f"#SBATCH {option}" for option in self.sbatch_options)
        lines.extend(extra)
        lines += [
            "set -euo pipefail",
            f"export PYTHONPATH={shlex.quote(str(self.repo_root / 'src'))}"
            '"${PYTHONPATH:+:$PYTHONPATH}"',
        ]
        return lines

    def _worker_command(self, offset: int) -> str:
        parts = [
            shlex.quote(self.python),
            "-m",
            "repro.exec.worker",
            "--cells",
            shlex.quote(str(self.directory / "cells.jsonl")),
            "--offset",
            str(offset),
            "--index",
            '"${SLURM_ARRAY_TASK_ID}"',
            "--store",
            shlex.quote(str(self.store_root)),
            "--manifest",
            shlex.quote(str(self.directory / "manifest.jsonl")),
        ]
        if self.trace_root is not None:
            parts[-2:-2] = [
                "--trace-store",
                shlex.quote(str(self.trace_root)),
            ]
        return " ".join(parts)

    def _summarize_command(self, name: str) -> str:
        parts = [
            shlex.quote(self.python),
            "-m",
            "repro.campaign",
            "--name",
            shlex.quote(name),
            "--resume",
            shlex.quote(str(self.directory / "manifest.jsonl")),
            "--store",
            shlex.quote(str(self.store_root)),
        ]
        if self.trace_root is not None:
            parts += ["--trace-store", shlex.quote(str(self.trace_root))]
        return " ".join(parts)

    def prepare(self, name: str, runs: Iterable["RunSpec"]) -> SlurmSubmission:
        """Write the submission directory for ``runs``; deterministic bytes."""
        from repro.results.store import content_key, spec_contents

        import json

        runs = list(runs)
        if not runs:
            raise ValueError("cannot prepare a Slurm submission with no cells")
        self.directory.mkdir(parents=True, exist_ok=True)
        cells_path = self.directory / "cells.jsonl"
        with open(cells_path, "w", encoding="utf-8") as stream:
            for run in runs:
                stream.write(
                    json.dumps(
                        {
                            "index": run.index,
                            "key": content_key(run),
                            "run": spec_contents(run),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        manifest_path = self.directory / "manifest.jsonl"
        CampaignManifest(manifest_path).begin(name, runs)

        chunks: list[tuple[Path, int, int]] = []
        for chunk_no, offset in enumerate(range(0, len(runs), self.max_array_size)):
            size = min(self.max_array_size, len(runs) - offset)
            script = self.directory / f"array_{chunk_no:03d}.sbatch"
            lines = self._header(
                f"{name}-cells-{chunk_no:03d}",
                extra=[f"#SBATCH --array=0-{size - 1}"],
            )
            lines.append(self._worker_command(offset))
            script.write_text("\n".join(lines) + "\n", encoding="utf-8")
            chunks.append((script, offset, size))

        summarize_path = self.directory / "summarize.sbatch"
        lines = self._header(f"{name}-summarize")
        lines.append(self._summarize_command(name))
        summarize_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        _log.info(
            "slurm submission %s: %d cell(s) in %d array job(s) of <=%d",
            self.directory,
            len(runs),
            len(chunks),
            self.max_array_size,
        )
        return SlurmSubmission(
            directory=self.directory,
            cells_path=cells_path,
            manifest_path=manifest_path,
            summarize_path=summarize_path,
            chunks=tuple(chunks),
            total=len(runs),
        )

    # -- submission --------------------------------------------------------------

    def _run_sbatch(self, argv: list[str]) -> str:
        completed = subprocess.run(
            argv, check=True, capture_output=True, text=True
        )
        return completed.stdout

    def submit(
        self,
        submission: SlurmSubmission,
        sbatch_runner: Callable[[list[str]], str] | None = None,
    ) -> list[str]:
        """Submit every array chunk, then the ``afterok``-chained summarize
        job.  Returns all Slurm job ids (summarize last).  ``sbatch_runner``
        overrides the actual ``sbatch`` invocation (tests use a stub)."""
        runner = sbatch_runner if sbatch_runner is not None else self._run_sbatch
        job_ids: list[str] = []
        for script, _, _ in submission.chunks:
            output = runner([self.sbatch, str(script)])
            job_ids.append(self._parse_job_id(output, script))
        dependency = "afterok:" + ":".join(job_ids)
        output = runner(
            [
                self.sbatch,
                f"--dependency={dependency}",
                str(submission.summarize_path),
            ]
        )
        job_ids.append(self._parse_job_id(output, submission.summarize_path))
        _log.info(
            "submitted %d array job(s) + summarize as %s",
            len(submission.chunks),
            ", ".join(job_ids),
        )
        return job_ids

    @staticmethod
    def _parse_job_id(output: str, script: Path) -> str:
        match = _JOB_ID.search(output)
        if match is None:
            raise RuntimeError(
                f"sbatch output for {script.name} carried no job id: "
                f"{output[:200]!r}"
            )
        return match.group(1)
