"""Remote cell execution over SSH (or a loopback subprocess).

:class:`SSHExecutor` drives ``slots`` persistent worker processes, each one
``python -m repro.exec.worker`` in stream mode (:mod:`repro.exec.worker`):
JSONL requests down stdin, one flushed JSONL response per cell back up
stdout.  With a ``host`` the worker launches through ``ssh host ...``; with
``host=None`` it launches the local interpreter directly — the *loopback*
transport, which exercises the identical wire protocol with zero SSH
dependencies (what the tests and the CI smoke job use).

Rows come back as the store's canonical payload
(:func:`~repro.results.store.metrics_to_payload`) and are rebound to the
local :class:`~repro.campaign.spec.RunSpec`, so an SSH-executed campaign
aggregates byte-identically to a serial one.  By default
:attr:`~SSHExecutor.writes_store` is ``False`` — the remote host is assumed
to have no shared filesystem, so the orchestrator persists returned rows
into the local metrics tier.  Pass ``shared_filesystem=True`` (loopback, or
a cluster with a shared scratch) to ship the store roots in the ``config``
handshake instead, letting workers write both tiers directly.

Failure handling: a channel whose process dies or answers garbage is killed
and respawned once; the interrupted cell surfaces as a transient
:class:`~repro.exec.base.ExecutorError` (the orchestrator retries it — safe,
cells are pure).  When no channel can be (re)spawned the executor raises
:class:`~repro.exec.base.ExecutorDied` and the orchestrator retires it.
"""

from __future__ import annotations

import asyncio
import json
import shlex
import sys
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exec.base import Executor, ExecutorDied, ExecutorError, WorkerContext
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import RunMetrics
    from repro.campaign.spec import RunSpec
    from repro.obs.telemetry import Span

_log = get_logger("exec.ssh")

__all__ = ["SSHExecutor"]


def _default_repo_root() -> Path:
    """The import root of this very installation (``src/``) — what the
    loopback transport exports as the worker's ``PYTHONPATH``."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


class _Channel:
    """One worker process plus line-oriented JSONL request/response."""

    def __init__(self, process: asyncio.subprocess.Process, tag: str) -> None:
        self.process = process
        self.tag = tag

    async def request(self, payload: dict, timeout: float | None = 60.0) -> dict:
        assert self.process.stdin is not None and self.process.stdout is not None
        self.process.stdin.write(
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )
        await self.process.stdin.drain()
        line = await asyncio.wait_for(self.process.stdout.readline(), timeout)
        if not line:
            raise ExecutorError(f"{self.tag}: worker closed its stdout")
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise ExecutorError(
                f"{self.tag}: undecodable response {line[:200]!r}"
            ) from exc
        if not isinstance(response, dict):
            raise ExecutorError(f"{self.tag}: non-object response {response!r}")
        return response

    async def kill(self) -> None:
        if self.process.returncode is None:
            try:
                self.process.kill()
            except ProcessLookupError:  # pragma: no cover - already reaped
                pass
        try:
            await asyncio.wait_for(self.process.wait(), 5.0)
        except asyncio.TimeoutError:  # pragma: no cover - unkillable child
            pass


class SSHExecutor(Executor):
    """``slots`` persistent stream-mode workers on one (remote) host.

    ``host=None`` is the loopback transport: the worker is the local
    interpreter, launched directly with this checkout on ``PYTHONPATH`` —
    protocol-identical to the SSH path minus the ``ssh`` hop.
    """

    def __init__(
        self,
        host: str | None = None,
        slots: int = 1,
        python: str = "python3",
        repo_root: str | None = None,
        shared_filesystem: bool = False,
        name: str | None = None,
        handshake_timeout: float = 60.0,
    ) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        self.host = host
        self.slots = slots
        self.python = python
        self.repo_root = repo_root
        self.shared_filesystem = shared_filesystem
        self.writes_store = shared_filesystem
        self.name = name if name is not None else f"ssh[{host or 'loopback'}]"
        self.handshake_timeout = handshake_timeout
        self._channels: asyncio.Queue[_Channel] | None = None
        self._alive = 0

    # -- transport ---------------------------------------------------------------

    def _argv(self) -> list[str]:
        if self.host is None:
            return [sys.executable, "-m", "repro.exec.worker"]
        root = self.repo_root if self.repo_root is not None else "."
        remote = (
            f"PYTHONPATH={shlex.quote(root)} "
            f"{shlex.quote(self.python)} -m repro.exec.worker"
        )
        return ["ssh", "-o", "BatchMode=yes", self.host, remote]

    def _config_payload(self) -> dict:
        payload: dict = {"op": "config"}
        if self.shared_filesystem and self.context is not None:
            if self.context.store is not None:
                payload["store"] = str(self.context.store.root)
            if self.context.trace_store is not None:
                payload["trace_store"] = str(self.context.trace_store.root)
        return payload

    async def _spawn(self, tag: str) -> _Channel:
        argv = self._argv()
        env = None
        if self.host is None:
            import os

            env = dict(os.environ)
            root = self.repo_root or str(_default_repo_root())
            existing = env.get("PYTHONPATH")
            env["PYTHONPATH"] = (
                root if not existing else root + os.pathsep + existing
            )
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=env,
        )
        channel = _Channel(process, tag)
        try:
            response = await channel.request(
                self._config_payload(), timeout=self.handshake_timeout
            )
        except (ExecutorError, asyncio.TimeoutError) as exc:
            await channel.kill()
            raise ExecutorError(f"{tag}: config handshake failed: {exc}") from exc
        if not response.get("ok"):
            await channel.kill()
            raise ExecutorError(
                f"{tag}: worker rejected config: {response.get('error')}"
            )
        return channel

    async def start(self, context: WorkerContext) -> None:
        if context.sinks:
            raise ValueError(
                f"{self.name}: trace sinks cannot cross the SSH transport; "
                "run sink-exporting campaigns on a local executor"
            )
        await super().start(context)
        self._channels = asyncio.Queue()
        for i in range(self.slots):
            channel = await self._spawn(f"{self.name}#{i}")
            self._channels.put_nowait(channel)
            self._alive += 1
        _log.debug("%s: started %d worker channel(s)", self.name, self.slots)

    # -- execution ---------------------------------------------------------------

    async def run_cell(self, run: "RunSpec") -> "tuple[RunMetrics, Span | None]":
        if self._channels is None or self._alive <= 0:
            raise ExecutorDied(f"{self.name} has no live worker channels")
        from repro.results.store import metrics_from_payload, spec_contents

        channel = await self._channels.get()
        try:
            response = await channel.request(
                {
                    "op": "run",
                    "index": run.index,
                    "run": spec_contents(run),
                },
                timeout=None,  # the orchestrator owns the per-cell timeout
            )
        except (ExecutorError, asyncio.CancelledError):
            # The channel is in an unknown protocol state: kill it and try
            # to respawn a replacement so capacity degrades gracefully.
            await channel.kill()
            self._alive -= 1
            try:
                replacement = await self._spawn(channel.tag)
            except ExecutorError:
                if self._alive <= 0:
                    raise ExecutorDied(
                        f"{self.name}: all worker channels are dead"
                    ) from None
                _log.warning(
                    "%s: lost a worker channel (%d remain)", self.name, self._alive
                )
            else:
                self._channels.put_nowait(replacement)
                self._alive += 1
            raise
        else:
            self._channels.put_nowait(channel)
        if not response.get("ok"):
            raise ExecutorError(
                f"cell {run.index:04d} failed on {self.name}: "
                f"{response.get('error')}"
            )
        row = metrics_from_payload(run, response["row"])
        return row, None

    async def close(self) -> None:
        if self._channels is None:
            return
        while not self._channels.empty():
            channel = self._channels.get_nowait()
            try:
                await asyncio.wait_for(
                    channel.request({"op": "shutdown"}, timeout=5.0), 5.0
                )
            except (ExecutorError, asyncio.TimeoutError):
                pass
            await channel.kill()
        self._channels = None
        self._alive = 0
