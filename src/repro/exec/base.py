"""The executor abstraction: where a campaign cell physically runs.

A campaign is a list of pure :class:`~repro.campaign.spec.RunSpec` cells; an
:class:`Executor` is a place that can run them — a persistent local process
pool (:class:`~repro.exec.local.LocalPoolExecutor`), a remote host driven
over SSH (:class:`~repro.exec.ssh.SSHExecutor`), or anything a test wants to
script.  The asyncio orchestrator (:mod:`repro.exec.orchestrator`) deals
cells to every executor's slots as they free up, so one slow backend never
idles the others.

The contract is deliberately tiny:

* :meth:`Executor.start` receives the campaign's :class:`WorkerContext`
  (store tiers, sinks, telemetry clock factory) **once** — invariant context
  never crosses the wire per cell.
* :meth:`Executor.run_cell` awaits one cell and returns its
  ``(RunMetrics, Span | None)`` pair, exactly what the campaign runner's
  in-process path produces.  Failures are classified by exception type:
  :class:`ExecutorError` is transient (the orchestrator retries the cell
  with backoff), :class:`ExecutorDied` is terminal (the executor is retired
  and its cells requeue onto the survivors).
* Because every cell is a pure function of its spec and both store tiers
  write atomically under content keys, **re-running a cell is always safe**
  — retries, requeues after a death, and double executions after a timeout
  all converge on byte-identical artifacts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import RunMetrics
    from repro.campaign.spec import RunSpec
    from repro.obs.telemetry import Span
    from repro.results.sinks import TraceSink
    from repro.results.store import ResultStore
    from repro.traces.store import TraceStore

__all__ = [
    "Executor",
    "ExecutorDied",
    "ExecutorError",
    "WorkerContext",
]


class ExecutorError(RuntimeError):
    """A transient cell failure: the orchestrator retries the cell (with
    exponential backoff) up to its retry budget, possibly on another
    executor."""


class ExecutorDied(ExecutorError):
    """A terminal executor failure: the orchestrator retires the executor,
    logs a warning, and requeues its in-flight cell onto the remaining
    executors (graceful degradation).  The campaign only aborts when *no*
    executor survives."""


@dataclass(frozen=True)
class WorkerContext:
    """The invariant per-campaign context an executor's workers need.

    Picklable by construction (the store tiers are path-holding objects, the
    clock factory must be a picklable callable) so a process pool ships it
    **once** through its initializer instead of re-pickling it with every
    cell — only the :class:`~repro.campaign.spec.RunSpec` crosses the wire
    per cell.
    """

    sinks: tuple["TraceSink", ...] = ()
    store: "ResultStore | None" = None
    trace_store: "TraceStore | None" = None
    clock_factory: Callable | None = None


class Executor(ABC):
    """One place campaign cells can execute.

    Subclasses set :attr:`slots` (how many cells may be in flight at once)
    and implement :meth:`run_cell`; the orchestrator drives ``slots``
    concurrent :meth:`run_cell` calls per executor.  :attr:`writes_store`
    declares whether the executor's workers write the store tiers themselves
    (local pool workers do); when ``False`` the orchestrator persists the
    returned row into the local metrics tier so remote backends without a
    shared filesystem still populate the cache.
    """

    name: str = "executor"
    slots: int = 1
    writes_store: bool = True

    async def start(self, context: WorkerContext) -> None:
        """Bind the campaign context and bring up any transport/workers."""
        self.context = context

    @abstractmethod
    async def run_cell(self, run: "RunSpec") -> "tuple[RunMetrics, Span | None]":
        """Execute one cell; raise :class:`ExecutorError` (transient) or
        :class:`ExecutorDied` (terminal) on failure."""

    async def close(self) -> None:
        """Tear down workers/transport (idempotent; called even after a
        death)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} slots={self.slots}>"
