"""Local process-pool execution with a one-shot worker initializer.

Historically the campaign runner built a fresh ``multiprocessing.Pool`` per
campaign and shipped a ``partial`` carrying the sinks, both store tiers and
the telemetry clock factory **with every cell** — N cells meant N pickles of
invariant context.  This module fixes that seam (and the
:class:`LocalPoolExecutor` backend reuses it): the invariant
:class:`~repro.exec.base.WorkerContext` ships **once** through the pool
initializer into a process-global, and per cell only the
:class:`~repro.campaign.spec.RunSpec` crosses the wire.

Determinism is untouched: workers still run the same pure
``_execute_and_summarise`` path, rows are keyed by grid index, and both
store tiers write atomically under content keys.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.exec.base import Executor, ExecutorDied, ExecutorError, WorkerContext
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import RunMetrics
    from repro.campaign.spec import RunSpec
    from repro.obs.telemetry import Span

_log = get_logger("exec.local")

__all__ = [
    "LocalPoolExecutor",
    "initialise_worker",
    "pool_worker",
    "worker_pool",
]

#: The per-process campaign context, set once by :func:`initialise_worker`.
_CONTEXT: WorkerContext | None = None


def initialise_worker(context: WorkerContext) -> None:
    """Pool initializer: bind the campaign's invariant context to this
    worker process (runs once per worker, not once per cell)."""
    global _CONTEXT
    _CONTEXT = context


def pool_worker(run: "RunSpec") -> "tuple[RunMetrics, Span | None]":
    """Execute one cell against the process-global context.

    Module-level so it pickles by reference; the only per-cell payload on
    the wire is the :class:`~repro.campaign.spec.RunSpec` itself.
    """
    context = _CONTEXT
    if context is None:
        raise RuntimeError(
            "worker pool was not initialised with a WorkerContext "
            "(use worker_pool() or LocalPoolExecutor)"
        )
    from repro.campaign.runner import _execute_and_summarise

    return _execute_and_summarise(
        run,
        sinks=context.sinks,
        trace_store=context.trace_store,
        store=context.store,
        clock_factory=context.clock_factory,
    )


@contextmanager
def worker_pool(processes: int, context: WorkerContext):
    """A ``multiprocessing.Pool`` whose workers are pre-bound to ``context``
    (the campaign runner's pooled path)."""
    pool = multiprocessing.Pool(
        processes=processes, initializer=initialise_worker, initargs=(context,)
    )
    try:
        yield pool
    finally:
        pool.terminate()
        pool.join()


class LocalPoolExecutor(Executor):
    """Persistent local worker processes behind the executor interface.

    ``slots`` worker processes start once (context shipped through the
    initializer) and stay resident for the whole campaign; the orchestrator
    keeps up to ``slots`` cells in flight.  Workers write both store tiers
    themselves (same filesystem), so :attr:`writes_store` is ``True``.
    """

    writes_store = True

    def __init__(self, slots: int | None = None, name: str | None = None) -> None:
        if slots is not None and slots <= 0:
            raise ValueError("slots must be positive")
        self.slots = slots if slots is not None else (os.cpu_count() or 1)
        self.name = name if name is not None else f"local[{self.slots}]"
        self._pool: multiprocessing.pool.Pool | None = None

    async def start(self, context: WorkerContext) -> None:
        await super().start(context)
        self._pool = multiprocessing.Pool(
            processes=self.slots,
            initializer=initialise_worker,
            initargs=(context,),
        )
        _log.debug("%s: started %d persistent worker(s)", self.name, self.slots)

    async def run_cell(self, run: "RunSpec") -> "tuple[RunMetrics, Span | None]":
        if self._pool is None:
            raise ExecutorDied(f"{self.name} has no running pool")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def _resolve(setter, value) -> None:
            loop.call_soon_threadsafe(
                lambda: None if future.done() else setter(value)
            )

        try:
            self._pool.apply_async(
                pool_worker,
                (run,),
                callback=lambda value: _resolve(future.set_result, value),
                error_callback=lambda exc: _resolve(
                    future.set_exception,
                    ExecutorError(
                        f"cell {run.index:04d} failed in {self.name}: {exc!r}"
                    ),
                ),
            )
        except ValueError as exc:  # the pool was terminated under us
            raise ExecutorDied(f"{self.name} pool is gone: {exc}") from exc
        return await future

    async def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
