"""The asyncio campaign orchestrator: deal cells to executor slots.

Given a list of cells and a fleet of :class:`~repro.exec.base.Executor`
backends, :func:`orchestrate` runs one *slot loop* per executor slot, all
pulling from one shared :class:`asyncio.Queue` — a free slot takes the next
cell, so fast backends naturally absorb more of the campaign and one slow
backend never stalls the rest.  The loop enforces three failure policies:

* **Per-cell timeout** (``timeout=``): a cell that overruns is cancelled on
  its executor and treated as a transient failure.
* **Bounded retry with backoff** (``retries=``/``backoff=``): transient
  failures (:class:`~repro.exec.base.ExecutorError`, timeouts) requeue the
  cell after ``backoff * 2**(attempt-1)`` seconds, up to ``retries`` extra
  attempts, possibly landing on a different executor.  Cells are pure and
  store writes are atomic/idempotent, so re-execution is always safe.
* **Graceful degradation** (:class:`~repro.exec.base.ExecutorDied`): a dead
  executor is retired with a logged warning, its in-flight cells requeue
  onto the survivors (no retry charged — the death was not the cell's
  fault), and the campaign only aborts with
  :class:`CampaignExecutionError` when *no* executor remains.

Results are ``(RunMetrics, Span | None)`` pairs in completion order — the
campaign runner re-keys them by grid index, so orchestrated aggregation is
byte-identical to serial.  For executors with ``writes_store=False`` (a
remote host without the campaign's filesystem) the orchestrator persists
each returned row into the local metrics tier itself.

Everything observable streams through callbacks: ``on_done``/``on_failed``
journal the campaign manifest, ``on_status`` repaints the progress line
with per-executor in-flight counts, and the returned per-executor
:class:`ExecutorStats` feed the telemetry ``executor`` spans.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.exec.base import Executor, ExecutorDied, ExecutorError, WorkerContext
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import RunMetrics
    from repro.campaign.spec import RunSpec
    from repro.obs.telemetry import Span

_log = get_logger("exec.orchestrator")

__all__ = [
    "CampaignExecutionError",
    "ExecutorStats",
    "OrchestrationOutcome",
    "orchestrate",
]

#: Queue sentinel that tells a slot loop to exit.
_STOP = object()


class CampaignExecutionError(RuntimeError):
    """The orchestrated campaign could not complete every cell.

    ``failures`` carries ``(RunSpec, reason)`` pairs for cells that
    exhausted their retry budget (empty when the campaign aborted because
    every executor died with cells still queued).
    """

    def __init__(self, message: str, failures: Iterable = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


@dataclass
class ExecutorStats:
    """Per-executor accounting, fed to telemetry and the progress line."""

    name: str
    slots: int = 1
    dispatched: int = 0
    completed: int = 0
    retried: int = 0
    requeued: int = 0
    timeouts: int = 0
    in_flight: int = 0
    max_in_flight: int = 0
    died: bool = False
    #: ``[time, queue_depth, in_flight]`` samples at every dispatch/completion
    #: edge, on the clock :func:`orchestrate` was given (empty without one).
    #: Feeds the ``executor`` telemetry span and its Chrome counter track.
    series: list = field(default_factory=list)


@dataclass
class OrchestrationOutcome:
    """What :func:`orchestrate` hands back to the campaign runner."""

    #: ``(row, span)`` pairs in completion order (runner re-keys by index).
    results: list = field(default_factory=list)
    #: Display name -> stats, one entry per executor (names deduplicated).
    stats: dict = field(default_factory=dict)
    #: High-water mark of cells waiting for a free slot.
    max_queue_depth: int = 0


class _State:
    """Shared mutable orchestration state (single event loop, no locks)."""

    def __init__(self, runs: Sequence["RunSpec"], total_slots: int) -> None:
        self.queue: asyncio.Queue = asyncio.Queue()
        for run in runs:
            self.queue.put_nowait(run)
        self.outstanding = len(runs)
        self.total_slots = total_slots
        self.attempts: dict[int, int] = {}
        self.results: list = []
        self.failures: list = []
        self.retired: set[int] = set()
        self.live_executors = 0
        self.background: set[asyncio.Task] = set()
        self.abort_reason: str | None = None
        self.max_queue_depth = 0

    def note_queue_depth(self) -> None:
        self.max_queue_depth = max(self.max_queue_depth, self.queue.qsize())

    def stop_all(self) -> None:
        for _ in range(self.total_slots):
            self.queue.put_nowait(_STOP)

    def finish_one(self) -> None:
        self.outstanding -= 1
        if self.outstanding <= 0:
            self.stop_all()


async def _requeue_later(state: _State, run: "RunSpec", delay: float) -> None:
    await asyncio.sleep(delay)
    state.queue.put_nowait(run)
    state.note_queue_depth()


async def _slot_loop(
    executor: Executor,
    stats: ExecutorStats,
    state: _State,
    context: WorkerContext,
    timeout: float | None,
    retries: int,
    backoff: float,
    on_done: Callable | None,
    on_failed: Callable | None,
    notify: Callable[[], None],
) -> None:
    while True:
        item = await state.queue.get()
        if item is _STOP:
            return
        run = item
        if id(executor) in state.retired:
            # A sibling slot saw this executor die; hand the cell back and
            # bow out so only the survivors keep pulling.
            state.queue.put_nowait(run)
            return
        stats.dispatched += 1
        stats.in_flight += 1
        stats.max_in_flight = max(stats.max_in_flight, stats.in_flight)
        state.note_queue_depth()
        notify()
        try:
            if timeout is not None:
                row, span = await asyncio.wait_for(executor.run_cell(run), timeout)
            else:
                row, span = await executor.run_cell(run)
        except ExecutorDied as exc:
            stats.in_flight -= 1
            if id(executor) not in state.retired:
                state.retired.add(id(executor))
                state.live_executors -= 1
                stats.died = True
                _log.warning(
                    "executor %s died (%s); redistributing its cells across "
                    "the %d remaining executor(s)",
                    stats.name,
                    exc,
                    state.live_executors,
                )
            stats.requeued += 1
            state.queue.put_nowait(run)  # no retry charged: not the cell's fault
            notify()
            if state.live_executors <= 0:
                state.abort_reason = (
                    f"all executors died; last error from {stats.name}: {exc}"
                )
                state.stop_all()
            return
        except (ExecutorError, asyncio.TimeoutError) as exc:
            stats.in_flight -= 1
            if isinstance(exc, asyncio.TimeoutError):
                stats.timeouts += 1
                reason = f"timed out after {timeout:g}s on {stats.name}"
            else:
                reason = str(exc)
            attempt = state.attempts.get(run.index, 0) + 1
            state.attempts[run.index] = attempt
            if attempt > retries:
                state.failures.append((run, reason))
                _log.error(
                    "cell %04d failed permanently after %d attempt(s): %s",
                    run.index,
                    attempt,
                    reason,
                )
                if on_failed is not None:
                    on_failed(run, reason, stats.name)
                state.finish_one()
            else:
                stats.retried += 1
                delay = backoff * (2 ** (attempt - 1))
                _log.warning(
                    "cell %04d failed on %s (%s); retry %d/%d in %.2gs",
                    run.index,
                    stats.name,
                    reason,
                    attempt,
                    retries,
                    delay,
                )
                task = asyncio.create_task(_requeue_later(state, run, delay))
                state.background.add(task)
                task.add_done_callback(state.background.discard)
            notify()
            continue
        stats.in_flight -= 1
        stats.completed += 1
        if not executor.writes_store and context.store is not None:
            context.store.put(row)
        state.results.append((row, span))
        if on_done is not None:
            on_done(run, row, stats.name)
        notify()
        state.finish_one()


def _named_stats(executors: Sequence[Executor]) -> dict[int, ExecutorStats]:
    """One stats record per executor, display names deduplicated (two
    ``local[1]`` backends become ``local[1]`` and ``local[1]#2``)."""
    stats: dict[int, ExecutorStats] = {}
    seen: dict[str, int] = {}
    for executor in executors:
        count = seen.get(executor.name, 0) + 1
        seen[executor.name] = count
        name = executor.name if count == 1 else f"{executor.name}#{count}"
        stats[id(executor)] = ExecutorStats(name=name, slots=executor.slots)
    return stats


async def _orchestrate(
    runs: Sequence["RunSpec"],
    executors: Sequence[Executor],
    context: WorkerContext,
    timeout: float | None,
    retries: int,
    backoff: float,
    on_done: Callable | None,
    on_failed: Callable | None,
    on_status: Callable | None,
    clock: Callable[[], float] | None,
) -> OrchestrationOutcome:
    stats = _named_stats(executors)
    started: list[Executor] = []
    for executor in executors:
        try:
            await executor.start(context)
        except Exception as exc:
            # Startup death is degradation too: warn and run on the rest.
            stats[id(executor)].died = True
            _log.warning(
                "executor %s failed to start (%s); continuing without it",
                stats[id(executor)].name,
                exc,
            )
        else:
            started.append(executor)
    outcome = OrchestrationOutcome(
        stats={record.name: record for record in stats.values()}
    )
    if not started:
        raise CampaignExecutionError("no executor could be started")
    total_slots = sum(executor.slots for executor in started)
    state = _State(runs, total_slots)
    state.live_executors = len(started)

    def notify() -> None:
        if clock is not None:
            # Full (time, depth, in-flight) series, one sample per executor
            # per edge — not just the high-water mark the outcome keeps.
            now = clock()
            depth = state.queue.qsize()
            for executor in started:
                if id(executor) not in state.retired:
                    record = stats[id(executor)]
                    record.series.append([now, depth, record.in_flight])
        if on_status is not None:
            on_status(
                {
                    stats[id(executor)].name: stats[id(executor)].in_flight
                    for executor in started
                    if id(executor) not in state.retired
                },
                state.queue.qsize(),
            )

    try:
        loops = [
            asyncio.create_task(
                _slot_loop(
                    executor,
                    stats[id(executor)],
                    state,
                    context,
                    timeout,
                    retries,
                    backoff,
                    on_done,
                    on_failed,
                    notify,
                )
            )
            for executor in started
            for _ in range(executor.slots)
        ]
        await asyncio.gather(*loops)
    finally:
        for task in list(state.background):
            task.cancel()
        if state.background:
            await asyncio.gather(*state.background, return_exceptions=True)
        for executor in started:
            try:
                await executor.close()
            except Exception:  # pragma: no cover - best-effort teardown
                _log.debug("close failed for %s", stats[id(executor)].name)
    outcome.results = state.results
    outcome.max_queue_depth = state.max_queue_depth
    if state.abort_reason is not None:
        raise CampaignExecutionError(state.abort_reason)
    if state.failures:
        raise CampaignExecutionError(
            f"{len(state.failures)} cell(s) exhausted their retry budget "
            f"(first: cell {state.failures[0][0].index:04d}: "
            f"{state.failures[0][1]})",
            failures=state.failures,
        )
    return outcome


def orchestrate(
    runs: Sequence["RunSpec"],
    executors: Sequence[Executor],
    context: WorkerContext | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
    on_done: Callable | None = None,
    on_failed: Callable | None = None,
    on_status: Callable | None = None,
    clock: Callable[[], float] | None = None,
) -> OrchestrationOutcome:
    """Run ``runs`` across ``executors`` and return the outcome.

    Synchronous wrapper over the asyncio core (the campaign runner is a
    synchronous API).  ``on_done(run, row, executor_name)`` fires per
    completed cell, ``on_failed(run, reason, executor_name)`` per
    permanently failed cell, ``on_status(in_flight_by_executor,
    queue_depth)`` on every dispatch/completion edge.  ``clock`` (seconds,
    e.g. the telemetry's fresh clock) enables the per-executor
    ``(time, queue_depth, in_flight)`` series on the returned stats.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0:
        raise ValueError("backoff must be >= 0")
    if not executors:
        raise ValueError("at least one executor is required")
    return asyncio.run(
        _orchestrate(
            list(runs),
            list(executors),
            context if context is not None else WorkerContext(),
            timeout,
            retries,
            backoff,
            on_done,
            on_failed,
            on_status,
            clock,
        )
    )
