"""Deterministic discrete-event simulation engine.

The paper's evaluation measures wall-clock behaviour of workloads on real
MareNostrum III nodes.  This reproduction replaces the hardware with a
discrete-event simulation: every component that "takes time" (an application
iteration, a SLURM scheduling pass, a DLB poll interval) is advanced by the
engine in simulated seconds.  The engine is deterministic — identical inputs
produce identical timelines — which is what makes the figure-regeneration
benchmarks reproducible.

Public API
----------
* :class:`~repro.sim.engine.SimulationEngine` — event loop with a virtual
  clock, one-shot and periodic events, and generator-based processes.
* :class:`~repro.sim.engine.SimProcess` — handle of a running process.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventLog` —
  timestamped records used by tracing and metrics.
"""

from repro.sim.engine import SimulationEngine, SimProcess, Timeout, ProcessExit
from repro.sim.events import Event, EventLog

__all__ = [
    "SimulationEngine",
    "SimProcess",
    "Timeout",
    "ProcessExit",
    "Event",
    "EventLog",
]
