"""Timestamped event records shared by the simulator, tracer and metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped, named record with free-form payload.

    Events are ordered by ``(time, seq)`` so that two events at the same
    simulated instant keep their emission order.
    """

    time: float
    seq: int
    name: str = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


class EventLog:
    """Append-only list of :class:`Event` with simple query helpers.

    Used as the backing store of the Extrae-like tracer and of the metric
    collectors.  Appends must be non-decreasing in time, which the simulation
    engine guarantees.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._seq = 0

    def append(self, time: float, name: str, **payload: Any) -> Event:
        """Record an event at ``time``; returns the stored event."""
        if self._events and time < self._events[-1].time - 1e-12:
            raise ValueError(
                f"event {name!r} at t={time} is earlier than the last recorded "
                f"event at t={self._events[-1].time}"
            )
        event = Event(time=time, seq=self._seq, name=name, payload=dict(payload))
        self._seq += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def named(self, name: str) -> list[Event]:
        """All events with the given name, in time order."""
        return [e for e in self._events if e.name == name]

    def filter(self, predicate: Callable[[Event], bool]) -> list[Event]:
        return [e for e in self._events if predicate(e)]

    def between(self, start: float, stop: float) -> list[Event]:
        """Events with ``start <= time < stop``."""
        return [e for e in self._events if start <= e.time < stop]

    def last(self, name: str | None = None) -> Event | None:
        """Most recent event, optionally restricted to a name."""
        if name is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.name == name:
                return event
        return None

    def names(self) -> set[str]:
        return {e.name for e in self._events}

    def extend_from(self, other: Iterable[Event]) -> None:
        """Merge events from another log, re-sorting by time."""
        merged = sorted(list(self._events) + list(other))
        self._events = [
            Event(time=e.time, seq=i, name=e.name, payload=e.payload)
            for i, e in enumerate(merged)
        ]
        self._seq = len(self._events)
