"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of ``(time, priority, seq, action)`` entries
and a virtual clock.  Two kinds of actions are supported:

* plain callbacks scheduled with :meth:`SimulationEngine.call_at` /
  :meth:`SimulationEngine.call_after` / :meth:`SimulationEngine.call_every`;
* generator-based *processes* spawned with :meth:`SimulationEngine.spawn`.
  A process yields :class:`Timeout` objects (or bare ``float`` delays) to
  advance the clock, another :class:`SimProcess` to join it, or a list of
  processes to join them all.

Determinism: ties in time are broken by an explicit priority and then by a
monotonically increasing sequence number, so two runs of the same scenario
produce identical event orders.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the engine (e.g. time travel)."""


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("Timeout delay must be non-negative")


class ProcessExit(Exception):
    """Raised by a process body to terminate itself early with a value."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


ProcessGenerator = Generator[Any, Any, Any]


class SimProcess:
    """Handle of a spawned process.

    Attributes
    ----------
    name:
        Human-readable identifier (shows up in error messages and traces).
    finished:
        Whether the generator has run to completion (or was killed).
    value:
        Return value of the generator (``StopIteration.value``), or the value
        passed to :meth:`kill`.
    """

    def __init__(self, engine: "SimulationEngine", name: str, gen: ProcessGenerator) -> None:
        self._engine = engine
        self.name = name
        self._gen = gen
        self.finished = False
        self.value: Any = None
        self.started_at = engine.now
        self.finished_at: float | None = None
        self._waiters: list[Callable[[Any], None]] = []

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"SimProcess({self.name!r}, {state})"

    def on_finish(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run when the process finishes.

        If the process has already finished the callback runs immediately.
        """
        if self.finished:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def kill(self, value: Any = None) -> None:
        """Terminate the process at the current simulated time."""
        if self.finished:
            return
        self.value = value
        self._finish()

    def _finish(self) -> None:
        self.finished = True
        self.finished_at = self._engine.now
        self._gen.close()
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self.value)


class SimulationEngine:
    """The event loop.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> out = []
    >>> def worker(engine, label):
    ...     yield Timeout(1.0)
    ...     out.append((engine.now, label))
    >>> _ = engine.spawn(worker(engine, "a"), name="a")
    >>> _ = engine.spawn(worker(engine, "b"), name="b")
    >>> engine.run()
    1.0
    >>> out
    [(1.0, 'a'), (1.0, 'b')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: list[SimProcess] = []
        self._running = False

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling callbacks ----------------------------------------------

    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        heapq.heappush(
            self._queue,
            (max(time, self._now), priority, self._seq, lambda: callback(*args)),
        )
        self._seq += 1

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        self.call_at(self._now + delay, callback, *args, priority=priority)

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        until: float | None = None,
        priority: int = 0,
    ) -> None:
        """Run ``callback(*args)`` every ``interval`` seconds.

        The first invocation happens one interval from now; invocations stop
        once the clock passes ``until`` (if given) or the queue drains.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if until is not None and self._now > until:
                return
            callback(*args)
            self.call_after(interval, tick, priority=priority)

        self.call_after(interval, tick, priority=priority)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: ProcessGenerator, name: str | None = None) -> SimProcess:
        """Register a generator as a process starting at the current time."""
        process = SimProcess(self, name or f"proc-{len(self._processes)}", gen)
        self._processes.append(process)
        # Start the process as an immediate event so spawn order == start order.
        self.call_at(self._now, self._step, process, None)
        return process

    def processes(self) -> list[SimProcess]:
        return list(self._processes)

    def _resume(self, process: SimProcess, value: Any) -> None:
        self.call_at(self._now, self._step, process, value)

    def _step(self, process: SimProcess, send_value: Any) -> None:
        if process.finished:
            return
        try:
            yielded = process._gen.send(send_value)
        except StopIteration as stop:
            process.value = stop.value
            process._finish()
            return
        except ProcessExit as exit_:
            process.value = exit_.value
            process._finish()
            return
        self._handle_yield(process, yielded)

    def _handle_yield(self, process: SimProcess, yielded: Any) -> None:
        if yielded is None:
            # Cooperative reschedule at the same instant (after pending events).
            self.call_at(self._now, self._step, process, None)
        elif isinstance(yielded, Timeout):
            self.call_after(yielded.delay, self._step, process, None)
        elif isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            if yielded < 0:
                raise SimulationError(
                    f"process {process.name!r} yielded a negative delay ({yielded})"
                )
            self.call_after(float(yielded), self._step, process, None)
        elif isinstance(yielded, SimProcess):
            yielded.on_finish(lambda value: self._resume(process, value))
        elif isinstance(yielded, (list, tuple)) and all(
            isinstance(p, SimProcess) for p in yielded
        ):
            self._wait_all(process, list(yielded))
        else:
            raise SimulationError(
                f"process {process.name!r} yielded an unsupported value: {yielded!r}"
            )

    def _wait_all(self, waiter: SimProcess, targets: list[SimProcess]) -> None:
        remaining = {id(p) for p in targets if not p.finished}
        if not remaining:
            self._resume(waiter, [p.value for p in targets])
            return

        def make_callback(target: SimProcess) -> Callable[[Any], None]:
            def on_done(_value: Any) -> None:
                remaining.discard(id(target))
                if not remaining:
                    self._resume(waiter, [p.value for p in targets])

            return on_done

        for target in targets:
            if not target.finished:
                target.on_finish(make_callback(target))

    # -- running --------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains or the clock reaches ``until``.

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._queue:
                time, _priority, _seq, action = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if time > self._now:
                    self._now = time
                action()
        finally:
            self._running = False
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return self._now

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)
