"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of ``(time, priority, seq, action)`` entries
and a virtual clock.  Two kinds of actions are supported:

* plain callbacks scheduled with :meth:`SimulationEngine.call_at` /
  :meth:`SimulationEngine.call_after` / :meth:`SimulationEngine.call_every`;
* generator-based *processes* spawned with :meth:`SimulationEngine.spawn`.
  A process yields :class:`Timeout` objects (or bare ``float`` delays) to
  advance the clock, another :class:`SimProcess` to join it, or a list of
  processes to join them all.

Determinism: ties in time are broken by an explicit priority and then by a
monotonically increasing sequence number, so two runs of the same scenario
produce identical event orders.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the engine (e.g. time travel)."""


@dataclass(frozen=True, slots=True)
class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("Timeout delay must be non-negative")


@dataclass(frozen=True, slots=True)
class WakeAt:
    """Yielded by a process to sleep until an *absolute* simulated instant.

    Unlike :class:`Timeout` (which wakes at ``now + delay``, a float
    addition), a :class:`WakeAt` wake lands at exactly ``time`` — the batched
    fast path uses it to wake at a left-fold-accumulated step boundary with
    no re-rounding, so batched and single-step runs hit bit-identical
    instants.  A time at or before ``now`` wakes at ``now``.
    """

    time: float


class ProcessExit(Exception):
    """Raised by a process body to terminate itself early with a value."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


ProcessGenerator = Generator[Any, Any, Any]


class SimProcess:
    """Handle of a spawned process.

    Attributes
    ----------
    name:
        Human-readable identifier (shows up in error messages and traces).
    finished:
        Whether the generator has run to completion (or was killed).
    value:
        Return value of the generator (``StopIteration.value``), or the value
        passed to :meth:`kill`.
    """

    __slots__ = (
        "_engine",
        "name",
        "_gen",
        "finished",
        "value",
        "started_at",
        "finished_at",
        "priority",
        "_waiters",
    )

    def __init__(
        self,
        engine: "SimulationEngine",
        name: str,
        gen: ProcessGenerator,
        priority: int = 0,
    ) -> None:
        self._engine = engine
        self.name = name
        self._gen = gen
        self.finished = False
        self.value: Any = None
        self.started_at = engine.now
        self.finished_at: float | None = None
        #: Tie-break priority of every wake event of this process.  Processes
        #: with distinct priorities interleave deterministically at equal
        #: instants regardless of *when* their wakes were pushed — which is
        #: what makes the batched and single-step execution paths order
        #: same-time wakes identically.
        self.priority = priority
        self._waiters: list[Callable[[Any], None]] = []

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"SimProcess({self.name!r}, {state})"

    def on_finish(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run when the process finishes.

        If the process has already finished the callback runs immediately.
        """
        if self.finished:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def kill(self, value: Any = None) -> None:
        """Terminate the process at the current simulated time."""
        if self.finished:
            return
        self.value = value
        self._finish()

    def _finish(self) -> None:
        self.finished = True
        self.finished_at = self._engine.now
        self._gen.close()
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self.value)


class SimulationEngine:
    """The event loop.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> out = []
    >>> def worker(engine, label):
    ...     yield Timeout(1.0)
    ...     out.append((engine.now, label))
    >>> _ = engine.spawn(worker(engine, "a"), name="a")
    >>> _ = engine.spawn(worker(engine, "b"), name="b")
    >>> engine.run()
    1.0
    >>> out
    [(1.0, 'a'), (1.0, 'b')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Entries are (time, priority, seq, callback, args): storing the
        # callable and its arguments directly (instead of a per-call lambda
        # closure) keeps the hot path allocation-light.  ``seq`` is unique,
        # so comparisons never reach the callback.
        self._queue: list[tuple[float, int, int, Callable[..., Any], tuple]] = []
        self._seq = 0
        self._processes: list[SimProcess] = []
        self._running = False
        self._executed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling callbacks ----------------------------------------------

    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        heapq.heappush(
            self._queue,
            (max(time, self._now), priority, self._seq, callback, args),
        )
        self._seq += 1

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any, priority: int = 0
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        self.call_at(self._now + delay, callback, *args, priority=priority)

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        until: float | None = None,
        priority: int = 0,
    ) -> None:
        """Run ``callback(*args)`` every ``interval`` seconds.

        The first invocation happens one interval from now; invocations stop
        once the clock passes ``until`` (if given) or the queue drains.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if until is not None and self._now > until:
                return
            callback(*args)
            self.call_after(interval, tick, priority=priority)

        self.call_after(interval, tick, priority=priority)

    # -- processes ----------------------------------------------------------

    def spawn(
        self, gen: ProcessGenerator, name: str | None = None, priority: int = 0
    ) -> SimProcess:
        """Register a generator as a process starting at the current time.

        ``priority`` tie-breaks this process's wake events against same-time
        events of other priorities (lower runs first); processes of equal
        priority fall back to scheduling order.
        """
        process = SimProcess(
            self, name or f"proc-{len(self._processes)}", gen, priority=priority
        )
        self._processes.append(process)
        # Start the process as an immediate event so spawn order == start order.
        self.call_at(self._now, self._step, process, None, priority=priority)
        return process

    def processes(self) -> list[SimProcess]:
        return list(self._processes)

    def _resume(self, process: SimProcess, value: Any) -> None:
        self.call_at(self._now, self._step, process, value, priority=process.priority)

    def _step(self, process: SimProcess, send_value: Any) -> None:
        if process.finished:
            return
        try:
            yielded = process._gen.send(send_value)
        except StopIteration as stop:
            process.value = stop.value
            process._finish()
            return
        except ProcessExit as exit_:
            process.value = exit_.value
            process._finish()
            return
        self._handle_yield(process, yielded)

    def _handle_yield(self, process: SimProcess, yielded: Any) -> None:
        priority = process.priority
        if yielded is None:
            # Cooperative reschedule at the same instant (after pending events).
            self.call_at(self._now, self._step, process, None, priority=priority)
        elif isinstance(yielded, Timeout):
            self.call_after(yielded.delay, self._step, process, None, priority=priority)
        elif isinstance(yielded, WakeAt):
            self.call_at(
                max(yielded.time, self._now), self._step, process, None,
                priority=priority,
            )
        elif isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            if yielded < 0:
                raise SimulationError(
                    f"process {process.name!r} yielded a negative delay ({yielded})"
                )
            self.call_after(float(yielded), self._step, process, None, priority=priority)
        elif isinstance(yielded, SimProcess):
            yielded.on_finish(lambda value: self._resume(process, value))
        elif isinstance(yielded, (list, tuple)) and all(
            isinstance(p, SimProcess) for p in yielded
        ):
            self._wait_all(process, list(yielded))
        else:
            raise SimulationError(
                f"process {process.name!r} yielded an unsupported value: {yielded!r}"
            )

    def _wait_all(self, waiter: SimProcess, targets: list[SimProcess]) -> None:
        remaining = {id(p) for p in targets if not p.finished}
        if not remaining:
            self._resume(waiter, [p.value for p in targets])
            return

        def make_callback(target: SimProcess) -> Callable[[Any], None]:
            def on_done(_value: Any) -> None:
                remaining.discard(id(target))
                if not remaining:
                    self._resume(waiter, [p.value for p in targets])

            return on_done

        for target in targets:
            if not target.finished:
                target.on_finish(make_callback(target))

    # -- running --------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains or the clock reaches ``until``.

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        queue = self._queue
        executed = 0
        try:
            while queue:
                entry = queue[0]
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                if time > self._now:
                    self._now = time
                entry[3](*entry[4])
                executed += 1
        finally:
            self._running = False
            self._executed += executed
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return self._now

    @property
    def events_executed(self) -> int:
        """Total events dispatched so far (the perf harness's events/sec)."""
        return self._executed

    def peek(self) -> float | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def next_event_time(self) -> float | None:
        """Time of the next pending event, or ``None`` if the queue is empty.

        The skip-ahead primitive: a process deciding how far it may batch
        uninterrupted work can compare candidate wake instants against the
        next externally-visible instant of the simulation.  Note the result
        may equal :attr:`now` — events at the current instant (with pending
        sequence numbers) still count as external.
        """
        return self._queue[0][0] if self._queue else None

    def advance_until(self, time: float) -> WakeAt:
        """Token for a bounded skip-ahead: ``yield engine.advance_until(t)``.

        The process sleeps until the absolute instant ``t`` (clamped to
        ``now``), landing on exactly that float — no delay re-addition.
        Events scheduled before ``t`` still run at their own times; the
        caller is responsible for choosing a ``t`` it may legally sleep
        through (typically bounded by :meth:`next_event_time`).
        """
        return WakeAt(time)

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)
