"""Persistent results layer — the seam between execution and reporting.

PR 1 made the paper's evaluation grid declarative (`repro.campaign`); this
package makes it *persistent and reusable*:

* :mod:`repro.results.store` — a content-addressed
  :class:`~repro.results.store.ResultStore`: every run is keyed by a stable
  hash of its :class:`~repro.campaign.spec.RunSpec` contents (scenario,
  workload reference + seed, cluster, mask policy, scheduler options,
  interference — and *not* its grid index), and its
  :class:`~repro.campaign.runner.RunMetrics` row persists as one JSON file.
  ``run_campaign(..., store=...)`` consults the store first and simulates
  only the misses; cached and fresh campaigns aggregate byte-identically.
  Stores merge by key union, which is the cross-host sharding path.
* :mod:`repro.results.sinks` — opt-in per-run trace sinks: a Paraver-style
  ``.prv`` export and a JSONL export of the full execution trace, fed by
  ``run_campaign(..., sinks=...)`` / ``run_scenario_pair(..., sinks=...)``.
* :mod:`repro.results.query` — list / show / diff reporting over stores,
  also available as ``python -m repro.results ls|show|diff|gc``.

The *trace* tier — full per-run tracers, content-addressed by the same key —
lives in :mod:`repro.traces`; ``python -m repro.results merge --traces``
ships both tiers of a sharded campaign in one command.
"""

from repro.results.query import (
    StoreDiff,
    diff_stores,
    render_diff,
    render_entry,
    render_store_table,
)
from repro.results.sinks import (
    JsonlTraceSink,
    ParaverTraceSink,
    TraceSink,
    pcf_text,
    prv_text,
    read_jsonl_trace,
    row_text,
    read_prv,
    run_stem,
)
from repro.results.store import (
    DEFAULT_STORE_ROOT,
    STORE_FORMAT_VERSION,
    ResultStore,
    StoreEntry,
    content_key,
    spec_contents,
    spec_from_contents,
)

__all__ = [
    "ResultStore",
    "StoreEntry",
    "DEFAULT_STORE_ROOT",
    "STORE_FORMAT_VERSION",
    "content_key",
    "spec_contents",
    "spec_from_contents",
    "TraceSink",
    "ParaverTraceSink",
    "JsonlTraceSink",
    "prv_text",
    "pcf_text",
    "row_text",
    "read_prv",
    "read_jsonl_trace",
    "run_stem",
    "StoreDiff",
    "diff_stores",
    "render_diff",
    "render_entry",
    "render_store_table",
]
