"""Query and report helpers over a :class:`~repro.results.store.ResultStore`.

These back the ``python -m repro.results`` CLI but are plain functions: the
benchmarks and experiments use them directly to list stored cells, render one
entry's per-job metrics, and diff two stores (two campaigns, or two shards of
one campaign) cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.tables import render_table
from repro.results.store import ResultStore, StoreEntry


def _entry_policy(entry: StoreEntry) -> str:
    return entry.contents["policy"] or "default"


def _entry_scheduler(entry: StoreEntry) -> str:
    return entry.run.scheduler.label


def render_store_table(
    store: ResultStore, limit: int | None = None, prefix: str | None = None
) -> str:
    """One row per stored cell, in key order.

    Served entirely from the store's index summaries — one journal read,
    no per-cell JSON parsing — so ``ls`` stays O(changed) on warm stores
    of any size.  ``prefix`` filters on the content key, ``limit`` caps
    the row count after filtering.
    """
    summaries = store.summaries(prefix=prefix, limit=limit)
    if not summaries:
        return f"(store {store.root} is empty)"
    rows = [
        (
            item.key[:12],
            item.summary["scenario"],
            item.summary["workload"],
            item.summary["cluster"],
            item.summary["policy"],
            item.summary["scheduler"],
            f"{item.summary['total_run_time']:.3f}",
            f"{item.summary['average_response_time']:.3f}",
        )
        for item in summaries
    ]
    return render_table(
        [
            "Key",
            "Scenario",
            "Workload",
            "Cluster",
            "Policy",
            "Scheduler",
            "Total run time (s)",
            "Avg response (s)",
        ],
        rows,
    )


def render_entry(entry: StoreEntry) -> str:
    """Full per-job metrics of one stored cell."""
    row = entry.row()
    header = [
        f"key       {entry.key}",
        f"run       {row.run.cell_id}",
        f"workload  {row.workload_name}",
        f"total run time    {row.total_run_time:.3f} s",
        f"avg response time {row.average_response_time:.3f} s",
        f"makespan end      {row.makespan_end:.3f} s",
        "",
    ]
    wait = dict(row.wait_times)
    run_times = dict(row.run_times)
    utilisation = dict(row.job_utilisation)
    job_rows = [
        (
            job,
            f"{response:.3f}",
            f"{wait[job]:.3f}",
            f"{run_times[job]:.3f}",
            f"{utilisation[job]:.3f}",
        )
        for job, response in row.response_times
    ]
    table = render_table(
        ["Job", "Response (s)", "Wait (s)", "Run (s)", "Utilisation"], job_rows
    )
    return "\n".join(header) + table


@dataclass(frozen=True)
class StoreDiff:
    """Cell-by-cell comparison of two stores."""

    #: (key, entry in a, entry in b) for cells present in both stores.
    common: tuple[tuple[str, StoreEntry, StoreEntry], ...]
    only_a: tuple[str, ...]
    only_b: tuple[str, ...]

    @property
    def identical(self) -> bool:
        return not self.only_a and not self.only_b and all(
            ea.metrics == eb.metrics for _k, ea, eb in self.common
        )


def diff_stores(a: ResultStore, b: ResultStore) -> StoreDiff:
    entries_a = {entry.key: entry for entry in a.entries()}
    entries_b = {entry.key: entry for entry in b.entries()}
    common = tuple(
        (key, entries_a[key], entries_b[key])
        for key in sorted(entries_a.keys() & entries_b.keys())
    )
    return StoreDiff(
        common=common,
        only_a=tuple(sorted(entries_a.keys() - entries_b.keys())),
        only_b=tuple(sorted(entries_b.keys() - entries_a.keys())),
    )


def render_diff(diff: StoreDiff) -> str:
    """Human-readable cell-by-cell diff (total run time and avg response)."""
    lines: list[str] = []
    if diff.common:
        rows = []
        for key, ea, eb in diff.common:
            ta = ea.metrics["total_run_time"]
            tb = eb.metrics["total_run_time"]
            ra = ea.metrics["average_response_time"]
            rb = eb.metrics["average_response_time"]
            delta = (tb - ta) / ta * 100 if ta else 0.0
            marker = "=" if ea.metrics == eb.metrics else "!"
            rows.append(
                (
                    marker,
                    key[:12],
                    ea.contents["scenario"],
                    ea.run.workload.label,
                    f"{ta:.3f}",
                    f"{tb:.3f}",
                    f"{delta:+.2f}%",
                    f"{ra:.3f}",
                    f"{rb:.3f}",
                )
            )
        lines.append(
            render_table(
                [
                    "",
                    "Key",
                    "Scenario",
                    "Workload",
                    "Total A (s)",
                    "Total B (s)",
                    "dTotal",
                    "Avg resp A (s)",
                    "Avg resp B (s)",
                ],
                rows,
            )
        )
    for label, keys in (("only in A", diff.only_a), ("only in B", diff.only_b)):
        if keys:
            lines.append(f"{label}: {len(keys)} cell(s)")
            lines.extend(f"  {key[:12]}" for key in keys)
    if not lines:
        return "(both stores are empty)"
    lines.append(
        "stores are identical" if diff.identical else "stores differ"
    )
    return "\n".join(lines)
