"""``python -m repro.results`` — inspect and maintain a result store.

Subcommands::

    ls    [--store ROOT]                    list stored cells
    show  KEY [--store ROOT]                per-job metrics of one cell
    diff  STORE_A STORE_B                   cell-by-cell campaign comparison
    merge OUT SHARD [SHARD ...] [--traces T_OUT T_SHARD ...]
                                            union N shard stores into OUT,
                                            optionally shipping the trace
                                            tier in the same command
    gc    [--store ROOT] [filters] [--delete]   collect entries

``diff`` exits 0 when the stores agree on every shared cell and have the same
key set, 1 otherwise — so two shards (or a re-run) can be verified from CI.
``merge`` is the campaign-sharding transport: each host runs its
``CampaignSpec.shard(n)`` slice into a local store, ships the directory, and
the coordinator merges them all in one call (entries are pure functions of
their keys, so collisions are idempotent; first store wins unless
``--overwrite``).  ``gc`` is a dry run unless ``--delete`` is given;
unreadable or old-format entries are always candidates.
"""

from __future__ import annotations

import argparse
import sys

from repro.results.query import diff_stores, render_diff, render_entry, render_store_table
from repro.results.store import DEFAULT_STORE_ROOT, ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.results",
        description="Inspect a content-addressed campaign result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list stored cells")
    ls.add_argument("--store", default=str(DEFAULT_STORE_ROOT),
                    help=f"store root (default {DEFAULT_STORE_ROOT})")
    ls.add_argument("--limit", type=int, default=None, metavar="N",
                    help="print at most N rows")
    ls.add_argument("--prefix", default=None,
                    help="only list keys starting with this hex prefix")

    show = sub.add_parser("show", help="show one cell's full metrics")
    show.add_argument("key", help="content key (an unambiguous prefix is enough)")
    show.add_argument("--store", default=str(DEFAULT_STORE_ROOT),
                      help=f"store root (default {DEFAULT_STORE_ROOT})")

    diff = sub.add_parser("diff", help="diff two stores cell by cell")
    diff.add_argument("store_a")
    diff.add_argument("store_b")

    merge = sub.add_parser(
        "merge", help="union one or more shard stores into a target store"
    )
    merge.add_argument("out", help="target store root (created if missing)")
    merge.add_argument("shards", nargs="+", metavar="SHARD",
                       help="shard store roots to merge in, in order")
    merge.add_argument("--overwrite", action="store_true",
                       help="later shards overwrite existing keys "
                            "(default: first occurrence wins)")
    merge.add_argument("--traces", nargs="+", default=None,
                       metavar="TRACE_ROOT",
                       help="also merge trace tiers: first value is the "
                            "target trace store, the rest are the shards' "
                            "trace stores — so one command ships both tiers "
                            "of a sharded campaign")

    gc = sub.add_parser("gc", help="collect entries (dry run without --delete)")
    gc.add_argument("--store", default=str(DEFAULT_STORE_ROOT),
                    help=f"store root (default {DEFAULT_STORE_ROOT})")
    gc.add_argument("--scenario", default=None,
                    help="also collect entries of this scenario")
    gc.add_argument("--workload-contains", default=None, metavar="SUBSTRING",
                    help="also collect entries whose workload label contains this")
    gc.add_argument("--all", action="store_true",
                    help="collect every entry")
    gc.add_argument("--lru", type=int, default=None, metavar="BYTES",
                    help="evict least-recently-read entries until the "
                         "survivors total at most BYTES")
    gc.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                    help="also collect entries whose file is older than this")
    gc.add_argument("--delete", action="store_true",
                    help="actually delete (default: dry run)")
    return parser


def _gc_predicate(args: argparse.Namespace):
    if args.all:
        return lambda entry: True
    if args.scenario is None and args.workload_contains is None:
        return None  # only unreadable/old-format entries
    def predicate(entry) -> bool:
        if args.scenario is not None and entry.contents["scenario"] != args.scenario:
            return False
        if (
            args.workload_contains is not None
            and args.workload_contains not in entry.run.workload.label
        ):
            return False
        return True
    return predicate


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "ls":
        store = ResultStore(args.store)
        print(f"store {store.root}: {len(store)} cell(s)")
        print(render_store_table(store, limit=args.limit, prefix=args.prefix))
        return 0
    if args.command == "show":
        store = ResultStore(args.store)
        try:
            entry = store.load(args.key)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        print(render_entry(entry))
        return 0
    if args.command == "diff":
        diff = diff_stores(ResultStore(args.store_a), ResultStore(args.store_b))
        print(render_diff(diff))
        return 0 if diff.identical else 1
    if args.command == "merge":
        from repro.traces.store import TraceStore

        out = ResultStore(args.out)
        if args.traces is not None and len(args.traces) < 2:
            print("--traces needs a target root and at least one shard root",
                  file=sys.stderr)
            return 2
        # A typo'd shard path must not read as a successful (empty) merge:
        # the whole point is transporting another host's cells.
        trace_shards = args.traces[1:] if args.traces is not None else []
        missing = [root for root in args.shards if not ResultStore(root).root.is_dir()]
        missing += [root for root in trace_shards if not TraceStore(root).root.is_dir()]
        if missing:
            for root in missing:
                print(f"shard store {root} does not exist", file=sys.stderr)
            return 1
        total = 0
        for shard_root in args.shards:
            shard = ResultStore(shard_root)
            copied = out.merge(shard, overwrite=args.overwrite)
            total += copied
            print(f"merged {shard.root}: {copied} of {len(shard)} entr(y/ies) copied")
        print(f"store {out.root}: {len(out)} cell(s) after merging {total}")
        if args.traces is not None:
            trace_out = TraceStore(args.traces[0])
            trace_total = 0
            for shard_root in trace_shards:
                shard = TraceStore(shard_root)
                copied = trace_out.merge(shard, overwrite=args.overwrite)
                trace_total += copied
                print(f"merged traces {shard.root}: "
                      f"{copied} of {len(shard)} trace(s) copied")
            print(f"trace store {trace_out.root}: {len(trace_out)} trace(s) "
                  f"after merging {trace_total}")
        return 0
    if args.command == "gc":
        store = ResultStore(args.store)
        removed = store.gc(
            _gc_predicate(args),
            dry_run=not args.delete,
            lru_bytes=args.lru,
            max_age=args.max_age,
        )
        verb = "removed" if args.delete else "would remove"
        print(f"gc {store.root}: {verb} {len(removed)} entr(y/ies)")
        for key in removed:
            print(f"  {key[:12]}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
