"""Per-run trace sinks: Paraver-style ``.prv`` and JSONL exports.

The paper's evaluation is *read* through Paraver: traces captured with Extrae
are rendered as timelines (Figures 3, 5, 13).  ``run_campaign`` historically
discarded the tracers its runs produced; a :class:`TraceSink` receives the
full :class:`~repro.workload.runner.ScenarioResult` of every run it executes
and persists the trace.

Two sinks are provided:

* :class:`ParaverTraceSink` — a ``.prv``-style export in the spirit of the
  Paraver trace format: a ``#Paraver`` header (with the run's horizon from
  :class:`~repro.metrics.paraver.ParaverView`), ``1:`` state records (one per
  step per thread) and ``2:`` event records (thread-count changes from DROM
  mask updates, per-step IPC and phase).  Times are integer microseconds.
* :class:`JsonlTraceSink` — one JSON object per record, trivially loadable
  from any analysis environment; :func:`read_jsonl_trace` round-trips it back
  into a :class:`~repro.metrics.tracing.Tracer`.

Both sinks derive their file names from the run's **content key alone** (the
grid ``index`` is deliberately excluded — the same cell reached from two
campaigns is the same simulation and must map to one file), so re-exports of
the same cell overwrite instead of accumulating, and concurrent pool workers
never collide (distinct runs have distinct keys).  The index survives only as
a field of the JSONL run header.  Sinks are plain picklable dataclasses: the
campaign runner ships them into its worker pool and each worker writes its
own runs' files.

The persistent sibling of these one-shot exports is
:class:`repro.traces.store.TraceStore` — the compressed content-addressed
trace tier; ``python -m repro.traces export`` re-emits either format from a
stored cell on demand.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.campaign.spec import RunSpec
from repro.metrics.paraver import ParaverView
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.results.store import content_key
from repro.workload.runner import ScenarioResult

#: Event types of the ``.prv``-style export (the 9 200 000 range is unused by
#: the standard Extrae event tables).
EV_THREAD_COUNT = 9200001  #: team size after a DROM mask change
EV_STEP_IPC_MILLI = 9200002  #: step IPC × 1000 (``.prv`` values are integers)
EV_STEP_PHASE = 9200003  #: 1-based index into the run's phase-name table

#: Paraver state identifiers (state record field 7).
STATE_RUNNING = 1


@runtime_checkable
class TraceSink(Protocol):
    """Receives the full result of each executed campaign run."""

    def write(self, run: RunSpec, result: ScenarioResult) -> Path:
        """Persist the run's trace; returns the written file's path."""
        ...


def run_stem(run: RunSpec) -> str:
    """Deterministic per-run file stem: scenario plus content key.

    The grid ``index`` is excluded on purpose: it names a *position* in one
    campaign, not a simulation, and embedding it used to write duplicate
    files for the same cell reached from two campaigns — contradicting the
    content-addressing contract.  The scenario prefix is redundant with the
    key but keeps directories human-scannable.
    """
    return f"{run.scenario}-{content_key(run)[:12]}"


def _us(t: float) -> int:
    return int(round(t * 1_000_000))


def prv_text(tracer: Tracer) -> str:
    """The ``.prv``-style rendering of a tracer (header + sorted records).

    A module-level function so the trace tier (``python -m repro.traces
    export``) re-emits stored cells through exactly the same code path as the
    live :class:`ParaverTraceSink` — the two outputs are byte-identical.
    """
    view = ParaverView(tracer) if len(tracer) else None
    ftime = _us(view.horizon()) if view is not None else 0

    jobs = tracer.jobs()
    appl = {job: i + 1 for i, job in enumerate(jobs)}
    nodes = sorted({step.node for step in tracer})
    cpu = {node: i + 1 for i, node in enumerate(nodes)}
    # Where each rank runs, for records that don't carry a node themselves
    # (mask changes); ranks never migrate nodes within a run.
    rank_cpu = {(step.job, step.rank): cpu[step.node] for step in tracer}
    phases = sorted({step.phase for step in tracer})
    phase_id = {name: i + 1 for i, name in enumerate(phases)}

    # Application list: one app per job, one task per rank, with the
    # maximum team size the rank ever ran with.
    appl_list = []
    for job in jobs:
        ranks = sorted({step.rank for step in tracer.steps(job)})
        threads = [
            max(step.nthreads for step in tracer.steps(job, rank)) for rank in ranks
        ]
        appl_list.append(
            f"{len(ranks)}({','.join(f'{t}:{r + 1}' for r, t in zip(ranks, threads))})"
        )
    header = (
        "#Paraver (01/01/2000 at 00:00)"
        f":{ftime}_us:{max(len(nodes), 1)}({','.join('1' for _ in nodes) or '1'})"
        f":{len(jobs)}:{':'.join(appl_list)}"
    )

    # (time, sort class, recording sequence, line): same-time records keep
    # their recording order, so re-exports are deterministic.
    records: list[tuple[int, int, int, str]] = []
    for step in tracer:
        for thread in range(step.nthreads):
            records.append(
                (
                    _us(step.start),
                    0,
                    len(records),
                    f"{STATE_RUNNING}:{cpu[step.node]}:{appl[step.job]}"
                    f":{step.rank + 1}:{thread + 1}"
                    f":{_us(step.start)}:{_us(step.end)}:{STATE_RUNNING}",
                )
            )
        records.append(
            (
                _us(step.start),
                1,
                len(records),
                f"2:{cpu[step.node]}:{appl[step.job]}:{step.rank + 1}:1"
                f":{_us(step.start)}"
                f":{EV_STEP_IPC_MILLI}:{int(round(step.ipc * 1000))}"
                f":{EV_STEP_PHASE}:{phase_id[step.phase]}",
            )
        )
    for change in tracer.mask_changes():
        job_appl = appl.get(change.job)
        if job_appl is None:
            continue  # job produced no steps; nothing to anchor the event to
        records.append(
            (
                _us(change.time),
                2,
                len(records),
                f"2:{rank_cpu.get((change.job, change.rank), 1)}"
                f":{job_appl}:{change.rank + 1}:1:{_us(change.time)}"
                f":{EV_THREAD_COUNT}:{change.new_threads}",
            )
        )
    records.sort(key=lambda r: (r[0], r[1], r[2]))

    lines = [header]
    # Phase-name table as comments, so the .prv stays self-describing
    # without a separate .pcf file.
    for name in phases:
        lines.append(f"# phase {phase_id[name]} {name}")
    lines.extend(line for _t, _c, _s, line in records)
    return "\n".join(lines) + "\n"


def pcf_text(tracer: Tracer) -> str:
    """The ``.pcf`` configuration companion of :func:`prv_text`.

    Declares the state and event-type dictionaries Paraver needs to label
    the trace; the phase VALUES table uses the same sorted-name numbering
    as the ``.prv`` event records, so the two files always agree.
    """
    phases = sorted({step.phase for step in tracer})
    lines = [
        "DEFAULT_OPTIONS",
        "",
        "LEVEL               THREAD",
        "UNITS               MICROSEC",
        "",
        "STATES",
        "0    NOT CREATED",
        "1    RUNNING",
        "",
        "EVENT_TYPE",
        f"0    {EV_THREAD_COUNT}    Thread count",
        "",
        "EVENT_TYPE",
        f"0    {EV_STEP_IPC_MILLI}    Step IPC (milli)",
        "",
        "EVENT_TYPE",
        f"0    {EV_STEP_PHASE}    Step phase",
    ]
    if phases:
        lines.append("VALUES")
        for i, name in enumerate(phases):
            lines.append(f"{i + 1}    {name}")
    return "\n".join(lines) + "\n"


def row_text(tracer: Tracer) -> str:
    """The ``.row`` axis-label companion of :func:`prv_text`.

    Names the CPU, node and thread rows with the same numbering (sorted
    nodes, job application order, rank+1 tasks) the ``.prv`` records use.
    """
    jobs = tracer.jobs()
    nodes = sorted({step.node for step in tracer})
    threads: list[str] = []
    for job in jobs:
        for rank in sorted({step.rank for step in tracer.steps(job)}):
            width = max(step.nthreads for step in tracer.steps(job, rank))
            threads.extend(
                f"{job}.{rank + 1}.{thread + 1}" for thread in range(width)
            )
    lines = [f"LEVEL CPU SIZE {max(len(nodes), 1)}"]
    lines.extend(nodes or ["node0"])
    lines.append("")
    lines.append(f"LEVEL NODE SIZE {max(len(nodes), 1)}")
    lines.extend(nodes or ["node0"])
    lines.append("")
    lines.append(f"LEVEL THREAD SIZE {max(len(threads), 1)}")
    lines.extend(threads or ["none.1.1"])
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class ParaverTraceSink:
    """Writes one ``.prv``-style trace file per run under ``root``, with
    its ``.pcf``/``.row`` companions so the real Paraver UI can open it.

    The ``.prv`` bytes themselves are unchanged by the companions — stored
    re-exports through :func:`prv_text` stay byte-identical to the sink's.
    """

    root: str | os.PathLike

    def write(self, run: RunSpec, result: ScenarioResult) -> Path:
        root = Path(self.root)
        root.mkdir(parents=True, exist_ok=True)
        stem = run_stem(run)
        path = root / f"{stem}.prv"
        path.write_text(prv_text(result.tracer))
        (root / f"{stem}.pcf").write_text(pcf_text(result.tracer))
        (root / f"{stem}.row").write_text(row_text(result.tracer))
        return path


def read_prv(path: str | os.PathLike) -> tuple[str, list[str], list[str]]:
    """Split a ``.prv``-style file into (header, state lines, event lines)."""
    lines = Path(path).read_text().splitlines()
    if not lines or not lines[0].startswith("#Paraver"):
        raise ValueError(f"{path} is not a .prv-style trace")
    states = [line for line in lines[1:] if line.startswith("1:")]
    events = [line for line in lines[1:] if line.startswith("2:")]
    return lines[0], states, events


@dataclass(frozen=True)
class JsonlTraceSink:
    """Writes one JSONL trace file per run under ``root``."""

    root: str | os.PathLike

    def write(self, run: RunSpec, result: ScenarioResult) -> Path:
        # The grid index lives only in this header field, never in the file
        # name — the same cell reached from two campaigns overwrites one file.
        header = {
            "record": "run",
            "key": content_key(run),
            "run_id": run.cell_id,
            "index": run.index,
            "scenario": run.scenario,
            "workload": result.workload.name,
            "end_time": result.end_time,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(step.to_record(), sort_keys=True) for step in result.tracer
        )
        lines.extend(
            json.dumps(change.to_record(), sort_keys=True)
            for change in result.tracer.mask_changes()
        )
        root = Path(self.root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{run_stem(run)}.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path


def read_jsonl_trace(path: str | os.PathLike) -> tuple[dict, Tracer]:
    """Round-trip a :class:`JsonlTraceSink` file back into a tracer.

    Returns the run-header object and a :class:`Tracer` holding the step and
    mask-change records in file order.
    """
    header: dict | None = None
    tracer = Tracer()
    for line in Path(path).read_text().splitlines():
        record = json.loads(line)
        kind = record.get("record")
        if kind == "run":
            header = {k: v for k, v in record.items() if k != "record"}
        elif kind == "step":
            tracer.record_step(StepRecord.from_record(record))
        elif kind == "mask_change":
            tracer.record_mask_change(MaskChangeRecord.from_record(record))
        else:
            raise ValueError(f"unknown record type {kind!r} in {path}")
    if header is None:
        raise ValueError(f"{path} has no run header record")
    return header, tracer
