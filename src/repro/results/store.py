"""Content-addressed persistence for campaign run metrics.

The store keys every run by a **stable hash of the run spec's contents** —
scenario, workload reference (including its generator seed), cluster, mask
policy, scheduler options and interference factor — and deliberately *not*
the grid ``index``: the same cell appearing at position 3 of one campaign and
position 17 of another is the same simulation and must share one entry.

Entries are small JSON documents (one per key) under a configurable root, so
the store needs no server, diffs cleanly under version control if someone
chooses to commit one, and two stores produced by different hosts shard a
campaign naturally: :meth:`ResultStore.merge` is a plain union of keys.

Determinism contract: a :class:`~repro.campaign.runner.RunMetrics` row
survives the JSON round trip byte-for-byte (Python floats serialise via
``repr``, which is shortest-round-trip exact), and :meth:`ResultStore.get`
rebinds the stored metrics to the *requesting* spec's grid index — so a
campaign aggregated from cache is indistinguishable from a freshly simulated
one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator

from repro.campaign.runner import RunMetrics
from repro.campaign.spec import (
    ClusterRef,
    HighPriorityWorkloadRef,
    InSituWorkloadRef,
    PolicyRef,
    RunSpec,
    SchedulerRef,
    SyntheticWorkloadRef,
    WorkloadRef,
)
from repro.obs.log import get_logger
from repro.store.index import IndexEntry, StoreIndex
from repro.workload.generator import AppMixEntry, SizeMixEntry, WorkloadSpec

_log = get_logger("results.store")

#: Default persistent location (gitignored; see ``.gitignore``).
DEFAULT_STORE_ROOT = Path("benchmarks") / "results" / "store"

#: Bumped whenever the entry layout or the content-hash inputs change; old
#: entries are then simply cache misses (and ``gc`` collects them).
#:
#: Version history:
#:
#: * 1 — initial layout (uniform per-workload node counts).
#: * 2 — per-job resource requests: the workload references serialise the
#:   generator's ``size_mix``/``burst_size`` families and the in-situ
#:   ``analytics_nodes``, all of which enter the content hash.  v1 cells were
#:   hashed without them, so treating one as a v2 hit could silently alias
#:   two different simulations — they are invalid, never rebound.
STORE_FORMAT_VERSION = 2


# -- canonical spec (de)serialisation ------------------------------------------------


def _workload_to_dict(ref: WorkloadRef) -> dict:
    payload = asdict(ref)
    payload["type"] = type(ref).__name__
    return payload


_WORKLOAD_TYPES = {
    cls.__name__: cls
    for cls in (SyntheticWorkloadRef, InSituWorkloadRef, HighPriorityWorkloadRef)
}


def _workload_from_dict(payload: dict) -> WorkloadRef:
    kind = payload["type"]
    if kind not in _WORKLOAD_TYPES:
        raise ValueError(f"unknown workload reference type {kind!r}")
    if kind == "SyntheticWorkloadRef":
        spec = payload["spec"]
        return SyntheticWorkloadRef(
            spec=WorkloadSpec(
                njobs=spec["njobs"],
                arrival=spec["arrival"],
                mean_interarrival=spec["mean_interarrival"],
                app_mix=tuple(AppMixEntry(**entry) for entry in spec["app_mix"]),
                priority_levels=tuple(spec["priority_levels"]),
                nodes=spec["nodes"],
                work_scale=spec["work_scale"],
                iterations=spec["iterations"],
                name=spec["name"],
                size_mix=tuple(SizeMixEntry(**entry) for entry in spec["size_mix"]),
                burst_size=spec["burst_size"],
            ),
            seed=payload["seed"],
        )
    if kind == "InSituWorkloadRef":
        return InSituWorkloadRef(
            simulator=payload["simulator"],
            simulator_config=payload["simulator_config"],
            analytics=payload["analytics"],
            analytics_config=payload["analytics_config"],
            analytics_submit=payload["analytics_submit"],
            simulator_kwargs=tuple(
                (key, value) for key, value in payload["simulator_kwargs"]
            ),
            analytics_nodes=payload["analytics_nodes"],
        )
    return HighPriorityWorkloadRef(second_submit=payload["second_submit"])


def spec_contents(run: RunSpec) -> dict:
    """The canonical, JSON-able contents of a run spec — everything that
    determines what the run computes, and nothing that doesn't (``index``)."""
    return {
        "scenario": run.scenario,
        "workload": _workload_to_dict(run.workload),
        "cluster": asdict(run.cluster),
        "policy": run.policy.name if run.policy is not None else None,
        "scheduler": asdict(run.scheduler),
        "interference_factor": run.interference_factor,
    }


def spec_from_contents(contents: dict, index: int = 0) -> RunSpec:
    """Rebuild a run spec from its stored contents (inverse of
    :func:`spec_contents` up to the grid ``index``)."""
    policy = contents["policy"]
    return RunSpec(
        index=index,
        scenario=contents["scenario"],
        workload=_workload_from_dict(contents["workload"]),
        cluster=ClusterRef(**contents["cluster"]),
        policy=PolicyRef(policy) if policy is not None else None,
        interference_factor=contents["interference_factor"],
        scheduler=SchedulerRef(**contents["scheduler"]),
    )


def content_key(run: RunSpec) -> str:
    """Stable content hash of a run spec (hex SHA-256 of its canonical JSON)."""
    payload = json.dumps(spec_contents(run), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- metrics (de)serialisation --------------------------------------------------------


def _pairs_to_payload(pairs: tuple[tuple[str, float], ...]) -> list[list]:
    return [[label, value] for label, value in pairs]


def _pairs_from_payload(payload: list) -> tuple[tuple[str, float], ...]:
    return tuple((label, value) for label, value in payload)


def _metrics_to_payload(row: RunMetrics) -> dict:
    return {
        "workload_name": row.workload_name,
        "total_run_time": row.total_run_time,
        "average_response_time": row.average_response_time,
        "makespan_end": row.makespan_end,
        "response_times": _pairs_to_payload(row.response_times),
        "wait_times": _pairs_to_payload(row.wait_times),
        "run_times": _pairs_to_payload(row.run_times),
        "job_utilisation": _pairs_to_payload(row.job_utilisation),
    }


def _metrics_from_payload(run: RunSpec, payload: dict) -> RunMetrics:
    return RunMetrics(
        run=run,
        workload_name=payload["workload_name"],
        total_run_time=payload["total_run_time"],
        average_response_time=payload["average_response_time"],
        makespan_end=payload["makespan_end"],
        response_times=_pairs_from_payload(payload["response_times"]),
        wait_times=_pairs_from_payload(payload["wait_times"]),
        run_times=_pairs_from_payload(payload["run_times"]),
        job_utilisation=_pairs_from_payload(payload["job_utilisation"]),
    )


#: Public aliases for the executor transport (:mod:`repro.exec.worker`), which
#: ships :class:`RunMetrics` rows as JSON across subprocess/SSH boundaries
#: using exactly the store's serialisation (floats via ``repr``, so rows
#: survive the round trip byte-for-byte).
metrics_to_payload = _metrics_to_payload
metrics_from_payload = _metrics_from_payload


# -- index summaries ------------------------------------------------------------------


def _summarise_entry(payload: dict) -> dict | None:
    """The render-ready fields of one entry payload — everything the ``ls``
    table prints, precomputed once at write/index time so listings never
    rebuild N specs."""
    try:
        contents = payload["run"]
        run = spec_from_contents(contents)
        metrics = payload["metrics"]
        return {
            "scenario": contents["scenario"],
            "workload": run.workload.label,
            "cluster": run.cluster.label,
            "policy": contents["policy"] or "default",
            "scheduler": run.scheduler.label,
            "total_run_time": metrics["total_run_time"],
            "average_response_time": metrics["average_response_time"],
        }
    except (KeyError, TypeError, ValueError):
        return None


def _describe_entry(path: Path) -> tuple[object, dict | None]:
    """Index rebuild callback: a file's format version and summary, with
    every failure mapping to "present but not renderable" — never raises."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None, None
    if not isinstance(payload, dict):
        return None, None
    version = payload.get("version")
    if version != STORE_FORMAT_VERSION:
        return version, None
    return version, _summarise_entry(payload)


# -- the store ------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreEntry:
    """One persisted run: its key, spec contents and raw metrics payload."""

    key: str
    path: Path
    contents: dict
    metrics: dict

    @property
    def run(self) -> RunSpec:
        return spec_from_contents(self.contents)

    def row(self, index: int = 0) -> RunMetrics:
        return _metrics_from_payload(spec_from_contents(self.contents, index), self.metrics)


class ResultStore:
    """Content-addressed, mergeable store of :class:`RunMetrics` rows."""

    def __init__(self, root: str | os.PathLike = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self._index: StoreIndex | None = None

    def __getstate__(self) -> dict:
        # Stores ship into pool/SSH workers (WorkerContext); the index is
        # per-process derived state and rebuilds lazily on the other side.
        return {"root": self.root}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self._index = None

    @property
    def index(self) -> StoreIndex:
        """The store's append-only JSONL index (derived metadata; the entry
        files stay the only ground truth)."""
        if self._index is None:
            self._index = StoreIndex(
                self.root,
                suffix=".json",
                store_version=STORE_FORMAT_VERSION,
                describe=_describe_entry,
                kind="results",
            )
        return self._index

    # -- addressing --------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def scan(self) -> frozenset[str]:
        """Every key present, from the index journal — O(1) filesystem work
        on a warm store, one ``listdir`` + stat-diff after any write.

        The campaign warm-scan and :meth:`merge` probe membership for N
        cells against this one set.  Presence is name-level only — readers
        still validate format on access, so a scanned key can turn out to
        be a miss when its entry is stale — and the index self-heals from
        the directory whenever it is missing, torn or disagrees with it.
        """
        if not self.root.is_dir():
            return frozenset()
        return self.index.scan()

    def keys(self) -> list[str]:
        return sorted(self.scan())

    def __len__(self) -> int:
        return len(self.scan())

    def __contains__(self, run: RunSpec) -> bool:
        return self.path_for(content_key(run)).exists()

    # -- read/write --------------------------------------------------------------

    def get(self, run: RunSpec, key: str | None = None) -> RunMetrics | None:
        """The stored row of ``run``'s cell, rebound to ``run``'s grid index,
        or ``None`` on a miss (including unreadable, old-format or otherwise
        malformed entries — a bad cache entry must mean "re-simulate", never
        abort the campaign).  ``key`` is an optional precomputed
        ``content_key(run)`` so batch scans hash each spec once."""
        if key is None:
            key = content_key(run)
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != STORE_FORMAT_VERSION:
                return None
            row = _metrics_from_payload(run, payload["metrics"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self.index.note_read(key)
        return row

    def put(self, row: RunMetrics) -> Path:
        """Persist one row under its content key (idempotent overwrite)."""
        key = content_key(row.run)
        payload = {
            "version": STORE_FORMAT_VERSION,
            "key": key,
            "run": spec_contents(row.run),
            "run_id": row.run.cell_id,
            "metrics": _metrics_to_payload(row),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        # Unique temp name + atomic rename: concurrent writers of the same
        # cell (pool workers, campaign shards) cannot interleave bytes.
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        tmp.replace(path)
        try:
            st = path.stat()
        except OSError:
            st = None
        if st is not None:
            self.index.record_put(
                key,
                size=st.st_size,
                mtime_ns=st.st_mtime_ns,
                version=STORE_FORMAT_VERSION,
                summary=_summarise_entry(payload),
            )
        _log.debug("put %s (%s)", key[:12], row.run.cell_id)
        return path

    def _read_entry(self, key: str) -> StoreEntry:
        """Read one entry by exact key; raises ``ValueError``/``KeyError``/
        ``OSError`` on unreadable, malformed or old-format files."""
        path = self.path_for(key)
        payload = json.loads(path.read_text())
        if payload.get("version") != STORE_FORMAT_VERSION:
            raise ValueError(
                f"entry {key[:12]} has store format "
                f"{payload.get('version')!r}, expected {STORE_FORMAT_VERSION}"
            )
        return StoreEntry(
            key=key, path=path, contents=payload["run"], metrics=payload["metrics"]
        )

    def load(self, key: str) -> StoreEntry:
        """Read one entry by (possibly abbreviated, unambiguous) key."""
        matches = [k for k in self.keys() if k.startswith(key)]
        if not matches:
            raise KeyError(f"no entry with key {key!r} in {self.root}")
        if len(matches) > 1:
            raise KeyError(f"key {key!r} is ambiguous ({len(matches)} matches)")
        entry = self._read_entry(matches[0])
        self.index.note_read(matches[0])
        return entry

    def summaries(
        self, prefix: str | None = None, limit: int | None = None
    ) -> list[IndexEntry]:
        """Render-ready listing rows straight from the index — one journal
        read instead of N entry reads.  Keys whose file is stale or
        unreadable (``summary is None``) are excluded, matching
        :meth:`entries`'s visibility rule; rows come in key order."""
        if not self.root.is_dir():
            return []
        rows = self.index.live_entries()
        out: list[IndexEntry] = []
        for key in sorted(rows):
            if prefix is not None and not key.startswith(prefix):
                continue
            if rows[key].summary is None:
                continue
            out.append(rows[key])
            if limit is not None and len(out) >= limit:
                break
        return out

    def entries(self) -> Iterator[StoreEntry]:
        """All live entries, sorted by key (corrupt or old-format files are
        skipped — same visibility rule as :meth:`get`)."""
        for key in self.keys():
            try:
                yield self._read_entry(key)
            except (KeyError, ValueError, OSError):
                continue

    # -- maintenance -------------------------------------------------------------

    def remove(self, key: str) -> None:
        self.path_for(key).unlink(missing_ok=True)
        self.index.record_remove(key)

    def gc(
        self,
        predicate=None,
        dry_run: bool = False,
        lru_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Collect entries: unreadable/old-format files always, plus any whose
        :class:`StoreEntry` satisfies ``predicate``, plus the retention
        policies' picks — ``max_age`` dooms entries whose file is older than
        that many seconds, ``lru_bytes`` then evicts least-recently-read
        entries until the survivors total at most that many bytes (recency
        comes from the index's read tracking).  Returns removed keys."""
        doomed: list[str] = []
        for key in self.keys():
            try:
                entry = self._read_entry(key)
            except (OSError, ValueError, KeyError):
                doomed.append(key)
                continue
            if predicate is not None and predicate(entry):
                doomed.append(key)
        doomed.extend(
            self.index.retention_doomed(
                lru_bytes=lru_bytes, max_age=max_age, now=now, exclude=set(doomed)
            )
        )
        if not dry_run:
            for key in doomed:
                self.remove(key)
                _log.debug("gc removed %s", key[:12])
        _log.info(
            "gc %s %d of %d entr%s in %s",
            "would remove" if dry_run else "removed",
            len(doomed),
            len(self.keys()) + (0 if dry_run else len(doomed)),
            "y" if len(doomed) == 1 else "ies",
            self.root,
        )
        return doomed

    @staticmethod
    def _parse_current_entry(text: str) -> dict | None:
        """``text`` parsed as a current-format entry payload, else ``None``."""
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        if isinstance(payload, dict) and payload.get("version") == STORE_FORMAT_VERSION:
            return payload
        return None

    @classmethod
    def _is_current_entry(cls, text: str) -> bool:
        """Whether ``text`` is a readable, current-format entry payload."""
        return cls._parse_current_entry(text) is not None

    def merge(self, other: "ResultStore", overwrite: bool = False) -> int:
        """Union another store's entries into this one (the campaign-sharding
        merge path: shards fill disjoint key sets, the union is the campaign).

        Returns the number of entries copied.  With ``overwrite=False`` keys
        already present locally win, which is safe because entries are pure
        functions of their key's spec.  Old-format or unreadable source
        entries are never imported, and a stale local file never shadows a
        current incoming one — cells whose serialised contents survived a
        schema bump keep their key, so a pre-bump shard must not block the
        post-bump entry.
        """
        copied = 0
        present = self.scan()
        for key in sorted(other.scan()):
            target = self.path_for(key)
            if not overwrite and key in present:
                # Check the local side first: a warm re-merge (coordinator
                # re-running after each shard lands) then skips without ever
                # reading the source store — and the single-pass scan above
                # means absent keys cost no filesystem probe at all.
                try:
                    if self._is_current_entry(target.read_text()):
                        continue
                except OSError:
                    pass  # unreadable: the incoming entry wins
            try:
                data = other.path_for(key).read_text()
            except OSError:
                continue
            payload = self._parse_current_entry(data)
            if payload is None:
                continue
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.root / f".{key}.{os.getpid()}.tmp"
            tmp.write_text(data)
            tmp.replace(target)
            try:
                st = target.stat()
                self.index.record_put(
                    key,
                    size=st.st_size,
                    mtime_ns=st.st_mtime_ns,
                    version=STORE_FORMAT_VERSION,
                    summary=_summarise_entry(payload),
                )
            except OSError:
                pass  # the next scan reconciles the copied file in
            copied += 1
        _log.info("merged %d entr%s from %s", copied, "y" if copied == 1 else "ies", other.root)
        return copied
