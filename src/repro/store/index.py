"""Append-only JSONL index over a one-file-per-cell store root.

Both store tiers are one file per content key, which keeps writes atomic and
merges a plain file union — but made every ``scan()``, ``ls`` and warm
campaign lookup an O(N) directory walk, and every listing an O(N) sequence
of full entry reads.  :class:`StoreIndex` journals the store's membership
and render-ready summary fields into a sibling ``<root>.index.jsonl`` file,
following the append-only-manifest pattern of
:class:`repro.exec.manifest.CampaignManifest`:

* every record is one JSON line appended with the file opened in append
  mode, so concurrent writers (pool workers, SSH workers on a shared
  filesystem) interleave whole records, never bytes;
* replay is last-state-wins and skips malformed lines, so a torn tail from
  a crashed writer costs at most that writer's record;
* the journal compacts in place (temp file + atomic rename) once it holds
  several times more lines than live entries.

The index is **derived metadata, never ground truth**: the directory of
entry files is authoritative, and every anomaly — missing index, truncated
tail, foreign bytes, an entry file added or deleted behind the index's back
— degrades to a directory reconcile that self-heals the journal.  Freshness
is tracked with explicit ``synced`` records carrying the root directory's
mtime: a scan whose journal carries a ``synced`` marker matching the current
directory mtime trusts the replayed key set outright (O(1) in the number of
filesystem operations); anything else falls back to one ``listdir`` plus a
stat-diff, re-describing only the files whose size or mtime changed.

Record kinds::

    {"record": "index", "version": 1, "kind": ..., "store_version": N}
    {"record": "entry", "key": K, "size": S, "mtime_ns": T, "version": V,
     "summary": {...} | null}
    {"record": "remove", "key": K}
    {"record": "read", "key": K}
    {"record": "synced", "dir_mtime_ns": T}

The first valid line must be the ``index`` header; a version or
``store_version`` mismatch invalidates the whole journal (rebuilt on the
next scan, exactly like a schema bump turns store entries into misses).
``read`` records implement LRU retention without wall-clock entries: a
key's recency is the line number of its last ``entry``/``read`` record, so
``gc(lru_bytes=...)`` evicts in journal order, oldest activity first.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.log import get_logger

_log = get_logger("store.index")

INDEX_VERSION = 1

#: The journal lives *next to* the store root (``<root>.index.jsonl``), not
#: inside it: the root directory stays exactly the set of entry files, so
#: whole-directory byte comparisons, shard shipping and ``merge`` never see
#: the index, and the root's mtime only moves when ground truth changes.
INDEX_SUFFIX = ".index.jsonl"

#: Compact once the journal holds more than ``_COMPACT_FACTOR`` lines per
#: live entry (and at least ``_COMPACT_FLOOR`` lines — tiny stores never
#: compact).
_COMPACT_FLOOR = 64
_COMPACT_FACTOR = 4

#: Buffered ``read`` notes flush to disk once this many accumulate (or on
#: the next scan/maintenance write, whichever comes first).
_READ_FLUSH = 64

#: In-memory fallback marker for :attr:`StoreIndex._sig` when the journal
#: cannot be written (read-only shipped shard directories): the replayed
#: state stays authoritative for this object and every scan re-verifies
#: against the directory via the ``synced`` check.
_MEMORY = "memory"


@dataclass(frozen=True)
class IndexEntry:
    """One indexed cell: identity, cheap stat fields and a render summary.

    ``summary`` holds the tier-specific fields its ``ls`` table renders
    (scenario, workload label, headline metrics, ...); it is ``None`` for
    files that are unreadable or carry a stale format version — those keys
    still *scan* (presence is name-level, matching the stores' contract)
    but never render.
    """

    key: str
    size: int
    mtime_ns: int
    version: object
    summary: dict | None


class _State:
    """Replayed journal state: live entries plus activity ordinals."""

    __slots__ = ("entries", "order", "lines", "synced_ns")

    def __init__(self) -> None:
        self.entries: dict[str, IndexEntry] = {}
        #: key -> line number of its last entry/read record (LRU recency).
        self.order: dict[str, int] = {}
        self.lines = 0
        self.synced_ns: int | None = None


class StoreIndex:
    """The journal of one store root.

    ``describe`` is the tier's callback ``path -> (version, summary | None)``
    used when the index (re)builds from the directory; it must never raise
    (an unreadable file describes as ``(None, None)``).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        suffix: str,
        store_version: int,
        describe: Callable[[Path], tuple[object, dict | None]],
        kind: str = "store",
    ) -> None:
        self.root = Path(root)
        self.suffix = suffix
        self.store_version = store_version
        self.describe = describe
        self.kind = kind
        #: Scan outcomes, for telemetry: ``hits`` (fresh journal trusted
        #: outright), ``reconciles`` (stat-diff against the directory),
        #: ``rebuilds`` (journal missing/invalid, re-described from scratch).
        self.stats = {"hits": 0, "reconciles": 0, "rebuilds": 0}
        self._state: _State | None = None
        self._sig: tuple[int, int] | str | None = None
        self._pending_reads: list[str] = []

    @property
    def path(self) -> Path:
        return self.root.parent / f"{self.root.name}{INDEX_SUFFIX}"

    # -- journal replay ----------------------------------------------------------

    def _stat_sig(self) -> tuple[int, int] | None:
        try:
            st = self.path.stat()
        except OSError:
            return None
        return (st.st_size, st.st_mtime_ns)

    def _replay(self) -> _State | None:
        """Parse the journal, last state wins; ``None`` when the file is
        missing, has no valid header, or was written for another schema."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        # Fast path: a clean journal parses in one bulk json.loads (the
        # lines joined into an array), several times faster than one loads
        # per line at 10k+ entries.  Any torn tail, blank line or foreign
        # bytes fail the bulk parse and drop to the skip-bad-lines loop.
        records: list | None
        stripped = raw.strip()
        try:
            records = (
                json.loads(b"[" + stripped.replace(b"\n", b",") + b"]")
                if stripped
                else []
            )
        except ValueError:
            records = None
        state = _State()
        saw_header = False
        if records is not None:
            for record in records:
                state.lines += 1
                if not isinstance(record, dict):
                    continue
                if not saw_header:
                    if (
                        record.get("record") != "index"
                        or record.get("version") != INDEX_VERSION
                        or record.get("store_version") != self.store_version
                    ):
                        return None
                    saw_header = True
                    continue
                self._apply(state, record)
            return state if saw_header else None
        for line in raw.splitlines():
            state.lines += 1
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail or foreign bytes: skip, never abort
            if not isinstance(record, dict):
                continue
            if not saw_header:
                if (
                    record.get("record") != "index"
                    or record.get("version") != INDEX_VERSION
                    or record.get("store_version") != self.store_version
                ):
                    return None
                saw_header = True
                continue
            self._apply(state, record)
        return state if saw_header else None

    def _apply(self, state: _State, record: dict) -> None:
        kind = record.get("record")
        key = record.get("key")
        if kind == "entry" and isinstance(key, str):
            state.entries[key] = IndexEntry(
                key=key,
                size=int(record.get("size", 0)),
                mtime_ns=int(record.get("mtime_ns", 0)),
                version=record.get("version"),
                summary=record.get("summary"),
            )
            state.order[key] = state.lines
        elif kind == "remove" and isinstance(key, str):
            state.entries.pop(key, None)
            state.order.pop(key, None)
        elif kind == "read" and isinstance(key, str):
            if key in state.entries:
                state.order[key] = state.lines
        elif kind == "synced":
            try:
                state.synced_ns = int(record["dir_mtime_ns"])
            except (KeyError, TypeError, ValueError):
                pass

    def _load(self) -> _State | None:
        if self._sig == _MEMORY and self._state is not None:
            return self._state
        sig = self._stat_sig()
        if sig is not None and self._state is not None and sig == self._sig:
            return self._state
        self._state = self._replay()
        self._sig = sig
        return self._state

    # -- journal writes (all best-effort) ----------------------------------------

    def _header_record(self) -> dict:
        return {
            "record": "index",
            "version": INDEX_VERSION,
            "kind": self.kind,
            "store_version": self.store_version,
        }

    def _write_records(self, records: Iterable[dict], mode: str) -> bool:
        text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        try:
            with open(self.path, mode, encoding="utf-8") as stream:
                stream.write(text)
        except OSError:
            return False
        return True

    def _append(self, state: _State, records: list[dict]) -> None:
        """Apply ``records`` to the in-memory state and journal them; a
        failed write (read-only root) keeps the state in memory only."""
        for record in records:
            state.lines += 1
            self._apply(state, record)
        self._state = state
        if self._write_records(records, "a"):
            self._sig = self._stat_sig()
        else:
            self._sig = _MEMORY

    def _rewrite(self, records: list[dict]) -> _State:
        """Replace the whole journal (rebuild/compaction): temp file +
        atomic rename, so concurrent readers always see a valid journal."""
        state = _State()
        state.lines = 1  # the header line
        for record in records:
            state.lines += 1
            self._apply(state, record)
        self._state = state
        text = "".join(
            json.dumps(r, sort_keys=True) + "\n"
            for r in [self._header_record()] + records
        )
        tmp = self.path.parent / f".{self.path.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(self.path)
            self._sig = self._stat_sig()
        except OSError:
            self._sig = _MEMORY
        return state

    # -- scanning ----------------------------------------------------------------

    def scan(self) -> frozenset[str]:
        """Every key present, trusting a fresh journal outright and falling
        back to a self-healing directory reconcile on any disagreement."""
        try:
            dir_ns = self.root.stat().st_mtime_ns
        except OSError:
            return frozenset()
        self.flush_reads()
        state = self._load()
        if state is not None and state.synced_ns == dir_ns:
            self.stats["hits"] += 1
            return frozenset(state.entries)
        return self._reconcile(state, dir_ns)

    def _listing(self) -> dict[str, tuple[int, int]]:
        """key -> (size, mtime_ns) of every entry file currently on disk."""
        disk: dict[str, tuple[int, int]] = {}
        try:
            names = os.listdir(self.root)
        except OSError:
            return disk
        for name in names:
            if not name.endswith(self.suffix) or name.startswith("."):
                continue
            try:
                st = (self.root / name).stat()
            except OSError:
                continue  # raced with a concurrent remove
            disk[name[: -len(self.suffix)]] = (st.st_size, st.st_mtime_ns)
        return disk

    def _entry_record(self, key: str, size: int, mtime_ns: int) -> dict:
        version, summary = self.describe(self.root / f"{key}{self.suffix}")
        return {
            "record": "entry",
            "key": key,
            "size": size,
            "mtime_ns": mtime_ns,
            "version": version,
            "summary": summary,
        }

    def _reconcile(self, state: _State | None, dir_ns: int) -> frozenset[str]:
        disk = self._listing()
        if state is None:
            self.stats["rebuilds"] += 1
            _log.debug("index %s: rebuilding from %d file(s)", self.path, len(disk))
            records = [
                self._entry_record(key, size, mtime_ns)
                for key, (size, mtime_ns) in sorted(disk.items())
            ]
            records.append({"record": "synced", "dir_mtime_ns": dir_ns})
            self._rewrite(records)
            return frozenset(disk)
        self.stats["reconciles"] += 1
        records: list[dict] = []
        for key, (size, mtime_ns) in sorted(disk.items()):
            known = state.entries.get(key)
            if known is None or known.size != size or known.mtime_ns != mtime_ns:
                records.append(self._entry_record(key, size, mtime_ns))
        for key in sorted(set(state.entries) - set(disk)):
            records.append({"record": "remove", "key": key})
        if records:
            _log.debug("index %s: reconciled %d change(s)", self.path, len(records))
        records.append({"record": "synced", "dir_mtime_ns": dir_ns})
        self._append(state, records)
        self._maybe_compact(state)
        return frozenset(disk)

    def live_entries(self) -> dict[str, IndexEntry]:
        """key -> :class:`IndexEntry` after a consistency pass — one journal
        read instead of N entry reads on a warm store."""
        keys = self.scan()
        state = self._state
        if state is None:
            return {}
        return {key: state.entries[key] for key in keys if key in state.entries}

    # -- store write-through -----------------------------------------------------

    def record_put(
        self, key: str, size: int, mtime_ns: int, version: object, summary: dict | None
    ) -> None:
        """Journal one written entry (called after the atomic rename).

        Deliberately does *not* append a ``synced`` marker: the put changed
        the directory mtime, so the next scan performs one stat-diff
        reconcile and re-marks freshness — which is also what heals the
        journal when other writers landed entries concurrently.
        """
        record = {
            "record": "entry",
            "key": key,
            "size": size,
            "mtime_ns": mtime_ns,
            "version": version,
            "summary": summary,
        }
        state = self._load()
        if state is None:
            if self.path.exists():
                return  # invalid journal: leave it for the next scan's rebuild
            # First write against this root: start the journal with what we
            # know.  No synced marker — if the directory predates the index,
            # the next scan reconciles the rest of the files in.
            self._rewrite([record])
            return
        self._append(state, self._drain_reads() + [record])
        self._maybe_compact(state)

    def record_remove(self, key: str) -> None:
        state = self._load()
        if state is None:
            return  # missing/invalid journal: the next scan rebuilds anyway
        self._append(state, self._drain_reads() + [{"record": "remove", "key": key}])

    # -- read tracking -----------------------------------------------------------

    def note_read(self, key: str) -> None:
        """Buffer one read for LRU retention; flushed in batches so hot
        lookups stay one list append."""
        self._pending_reads.append(key)
        if len(self._pending_reads) >= _READ_FLUSH:
            self.flush_reads()

    def _drain_reads(self) -> list[dict]:
        reads, self._pending_reads = self._pending_reads, []
        return [{"record": "read", "key": key} for key in reads]

    def flush_reads(self) -> None:
        if not self._pending_reads:
            return
        records = self._drain_reads()
        state = self._load()
        if state is None:
            return  # recency hints are best-effort; never force a rebuild
        self._append(state, records)

    # -- compaction --------------------------------------------------------------

    def _maybe_compact(self, state: _State) -> None:
        if state.lines <= max(_COMPACT_FLOOR, _COMPACT_FACTOR * len(state.entries)):
            return
        # Live entries in activity order: replay assigns recency by line
        # number, so writing oldest-first preserves LRU order across the
        # rewrite without journalling any timestamps.
        records = [
            {
                "record": "entry",
                "key": entry.key,
                "size": entry.size,
                "mtime_ns": entry.mtime_ns,
                "version": entry.version,
                "summary": entry.summary,
            }
            for _ordinal, entry in sorted(
                (state.order.get(key, 0), entry) for key, entry in state.entries.items()
            )
        ]
        if state.synced_ns is not None:
            records.append({"record": "synced", "dir_mtime_ns": state.synced_ns})
        _log.debug(
            "index %s: compacted %d line(s) -> %d entr%s",
            self.path,
            state.lines,
            len(records),
            "y" if len(records) == 1 else "ies",
        )
        self._rewrite(records)

    # -- retention ---------------------------------------------------------------

    def retention_doomed(
        self,
        lru_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
        exclude: frozenset[str] | set[str] = frozenset(),
    ) -> list[str]:
        """Keys the retention policy wants gone, never touching ground truth.

        ``max_age`` dooms entries whose *file* is older than that many
        seconds (``now`` is injectable for tests); ``lru_bytes`` then evicts
        the least-recently-active survivors — journal activity order, a
        key's last ``entry``/``read`` record — until the remaining entries
        total at most that many bytes.  ``exclude`` lists keys already
        doomed by the caller (their bytes don't count against the budget).
        """
        if lru_bytes is None and max_age is None:
            return []
        live = self.scan()
        state = self._state
        if state is None:
            return []
        entries = {
            key: state.entries[key]
            for key in live
            if key in state.entries and key not in exclude
        }
        doomed: list[str] = []
        if max_age is not None:
            cutoff_ns = int(((time.time() if now is None else now) - max_age) * 1e9)
            for key in sorted(entries):
                if entries[key].mtime_ns < cutoff_ns:
                    doomed.append(key)
        if lru_bytes is not None:
            doomed_set = set(doomed)
            survivors = sorted(
                (state.order.get(key, 0), key)
                for key in entries
                if key not in doomed_set
            )
            total = sum(entries[key].size for _ordinal, key in survivors)
            for _ordinal, key in survivors:
                if total <= lru_bytes:
                    break
                doomed.append(key)
                total -= entries[key].size
        return doomed
