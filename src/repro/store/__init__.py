"""Shared machinery of the content-addressed store tiers.

:mod:`repro.store.index` provides the append-only JSONL index that makes
:class:`~repro.results.store.ResultStore` and
:class:`~repro.traces.store.TraceStore` scans O(1) on warm stores instead of
O(N) directory walks.  The index is derived metadata — the one-file-per-cell
directory stays the only ground truth.
"""

from repro.store.index import INDEX_SUFFIX, INDEX_VERSION, IndexEntry, StoreIndex

__all__ = ["INDEX_SUFFIX", "INDEX_VERSION", "IndexEntry", "StoreIndex"]
