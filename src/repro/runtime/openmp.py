"""Simulated OpenMP runtime with OMPT support and DLB integration.

The model keeps exactly the state DROM interacts with:

* ``max_threads`` (the value ``omp_set_num_threads`` controls);
* the *team* of the currently open parallel region — OpenMP cannot change the
  team size in the middle of a region, so mask changes delivered while a
  region is open take effect at the **next** parallel construct (this is the
  "acceptable, non-immediate malleability" the paper discusses in 3.1);
* thread→CPU pinning, rebound whenever the mask changes so co-allocated jobs
  never oversubscribe CPUs.

Two integration paths are provided, matching Sections 4.1 and 4.4:

* :class:`DlbOmptTool` — the transparent path: DLB registers as an OMPT tool
  and polls DROM at every ``parallel_begin``;
* the manual path — the application owns a :class:`~repro.core.dlb.DlbProcess`
  and calls :meth:`OpenMPRuntime.set_num_threads` itself (Listing 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.dlb import DlbProcess
from repro.core.errors import DlbError
from repro.cpuset.mask import CpuSet
from repro.runtime.ompt import (
    OmptCapableRuntime,
    OmptEvent,
    OmptEventData,
    OmptTool,
)


@dataclass(frozen=True)
class ParallelRegion:
    """A closed parallel region, recorded for inspection/tests."""

    index: int
    team_size: int
    pinning: tuple[tuple[int, int], ...]  # (thread_num, cpu) pairs


class OpenMPRuntime(OmptCapableRuntime):
    """Thread-team model of an OpenMP runtime bound to one process.

    Parameters
    ----------
    mask:
        Initial CPU mask of the process; the team size defaults to its width.
    bind_threads:
        Whether threads are pinned to CPUs (``OMP_PROC_BIND=true``), which is
        how the paper's experiments run.
    """

    def __init__(self, mask: CpuSet, bind_threads: bool = True) -> None:
        super().__init__()
        if mask.is_empty():
            raise ValueError("OpenMP runtime needs a non-empty CPU mask")
        self._mask = mask
        self._max_threads = mask.count()
        self._bind_threads = bind_threads
        self._in_parallel = False
        self._current_team = 0
        self._pinning: dict[int, int] = {}
        self._regions: list[ParallelRegion] = []
        self._pending_mask: CpuSet | None = None
        self._rebind()

    # -- standard OpenMP-ish API ------------------------------------------------

    @property
    def max_threads(self) -> int:
        """``omp_get_max_threads()``."""
        return self._max_threads

    @property
    def mask(self) -> CpuSet:
        """The CPU mask the runtime is currently pinning threads to."""
        return self._mask

    @property
    def in_parallel(self) -> bool:
        """``omp_in_parallel()``."""
        return self._in_parallel

    @property
    def current_team_size(self) -> int:
        return self._current_team

    def set_num_threads(self, n: int) -> None:
        """``omp_set_num_threads`` — takes effect at the next parallel region."""
        if n <= 0:
            raise ValueError("number of threads must be positive")
        self._max_threads = n

    def pinning(self) -> dict[int, int]:
        """Current thread→CPU binding (thread number → CPU id)."""
        return dict(self._pinning)

    def regions(self) -> list[ParallelRegion]:
        """All closed parallel regions, oldest first."""
        return list(self._regions)

    # -- malleability -------------------------------------------------------------

    def apply_mask(self, mask: CpuSet) -> bool:
        """Adopt a new CPU mask (what DLB does after a successful poll).

        If a parallel region is open the change is deferred to the region end
        (OpenMP cannot resize an open team); otherwise it is applied
        immediately.  Returns True if applied now, False if deferred.
        """
        if mask.is_empty():
            raise ValueError("cannot apply an empty mask")
        if self._in_parallel:
            self._pending_mask = mask
            return False
        self._do_apply(mask)
        return True

    def _do_apply(self, mask: CpuSet) -> None:
        self._mask = mask
        self._max_threads = mask.count()
        self._rebind()

    def _rebind(self) -> None:
        if not self._bind_threads:
            self._pinning = {}
            return
        cpus = list(self._mask)
        self._pinning = {i: cpus[i % len(cpus)] for i in range(self._max_threads)}

    # -- parallel construct ----------------------------------------------------------

    def parallel_region(self, num_threads: int | None = None) -> "_OpenRegion":
        """Open a parallel region (context manager).

        OMPT ``parallel_begin`` fires before the team is formed — this is the
        hook DLB uses to poll DROM, so a mask update delivered there already
        shapes this region's team.
        """
        return _OpenRegion(self, num_threads)

    def _begin_region(self, num_threads: int | None) -> int:
        if self._in_parallel:
            raise RuntimeError("nested parallel regions are not modelled")
        self.dispatch(
            OmptEventData(
                event=OmptEvent.PARALLEL_BEGIN,
                team_size=num_threads or self._max_threads,
            )
        )
        # A mask update may have arrived from the PARALLEL_BEGIN callback.
        team = min(num_threads or self._max_threads, self._max_threads)
        team = max(team, 1)
        self._in_parallel = True
        self._current_team = team
        for thread_num in range(team):
            self.dispatch(
                OmptEventData(
                    event=OmptEvent.IMPLICIT_TASK_BEGIN,
                    team_size=team,
                    thread_num=thread_num,
                )
            )
        return team

    def _end_region(self) -> None:
        team = self._current_team
        for thread_num in range(team):
            self.dispatch(
                OmptEventData(
                    event=OmptEvent.IMPLICIT_TASK_END,
                    team_size=team,
                    thread_num=thread_num,
                )
            )
        pinning = tuple(
            (t, self._pinning.get(t, -1)) for t in range(team)
        )
        self._regions.append(
            ParallelRegion(index=len(self._regions), team_size=team, pinning=pinning)
        )
        self._in_parallel = False
        self._current_team = 0
        self.dispatch(OmptEventData(event=OmptEvent.PARALLEL_END, team_size=team))
        if self._pending_mask is not None:
            pending, self._pending_mask = self._pending_mask, None
            self._do_apply(pending)


class _OpenRegion:
    """Context manager produced by :meth:`OpenMPRuntime.parallel_region`."""

    def __init__(self, runtime: OpenMPRuntime, num_threads: int | None) -> None:
        self._runtime = runtime
        self._num_threads = num_threads
        self.team_size = 0

    def __enter__(self) -> "_OpenRegion":
        self.team_size = self._runtime._begin_region(self._num_threads)
        return self

    def __exit__(self, *exc: object) -> None:
        self._runtime._end_region()


class DlbOmptTool(OmptTool):
    """DLB registered as an OMPT tool (the transparent OpenMP integration).

    On every ``parallel_begin`` the tool polls DROM through the process's
    :class:`DlbProcess` handle; if a new mask is pending it adjusts the thread
    count and rebinds threads before the team is formed.  No application
    change, no recompilation — only the runtime must support OMPT.
    """

    def __init__(self, dlb: DlbProcess) -> None:
        self._dlb = dlb
        self._runtime: OpenMPRuntime | None = None
        #: Number of mask updates applied through this tool.
        self.updates_applied = 0
        #: Optional hook invoked after a mask update is applied
        #: (``callback(new_mask)``) — used by the app models to adjust timing.
        self.on_update: Callable[[CpuSet], None] | None = None

    def initialize(self, runtime: OmptCapableRuntime) -> None:
        if not isinstance(runtime, OpenMPRuntime):
            raise TypeError("DlbOmptTool requires an OpenMPRuntime")
        self._runtime = runtime
        runtime.set_callback(OmptEvent.PARALLEL_BEGIN, self._on_parallel_begin)

    def finalize(self) -> None:
        self._runtime = None

    def _on_parallel_begin(self, _data: OmptEventData) -> None:
        if self._runtime is None:
            return
        code, ncpus, mask = self._dlb.poll_drom()
        if code is DlbError.DLB_SUCCESS and mask is not None:
            self._runtime.set_num_threads(ncpus)
            self._runtime.apply_mask(mask)
            self.updates_applied += 1
            if self.on_update is not None:
                self.on_update(mask)
