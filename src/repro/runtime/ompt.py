"""OMPT — the OpenMP tool interface used by DLB to hook the runtime.

The paper integrates DROM with OpenMP exclusively through OMPT (OpenMP
Technical Report 4): when the runtime starts it offers tool registration, the
DLB library registers callbacks for parallel-region and implicit-task events,
and those callbacks are where DROM polling happens — so an unmodified,
non-recompiled OpenMP application becomes malleable just by pre-loading DLB.

This module reproduces the slice of OMPT that matters for DROM: tool
registration and the ``parallel_begin`` / ``parallel_end`` /
``implicit_task`` callback set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Callable, Protocol


class OmptEvent(Enum):
    """Callback points exposed to tools."""

    PARALLEL_BEGIN = auto()
    PARALLEL_END = auto()
    IMPLICIT_TASK_BEGIN = auto()
    IMPLICIT_TASK_END = auto()
    THREAD_BEGIN = auto()
    THREAD_END = auto()


OmptCallback = Callable[["OmptEventData"], None]


@dataclass(frozen=True)
class OmptEventData:
    """Payload handed to OMPT callbacks."""

    event: OmptEvent
    #: Number of threads requested/used by the construct, where applicable.
    team_size: int = 0
    #: Thread number for implicit-task / thread events.
    thread_num: int = 0
    #: Free-form extra data (the runtime passes its own handle here).
    data: dict[str, Any] = field(default_factory=dict)


class OmptTool(Protocol):
    """A tool that wants to monitor an OpenMP runtime (DLB implements this)."""

    def initialize(self, runtime: "OmptCapableRuntime") -> None:
        """Called once when the runtime loads the tool."""

    def finalize(self) -> None:
        """Called when the runtime shuts down."""


class OmptCapableRuntime:
    """Mixin implementing the tool-registration half of OMPT.

    An OpenMP runtime that inherits from this can ``register_tool`` /
    ``set_callback``, and its internals call ``dispatch`` at the relevant
    construct boundaries.
    """

    def __init__(self) -> None:
        self._tool: OmptTool | None = None
        self._callbacks: dict[OmptEvent, list[OmptCallback]] = {}
        self._tool_finalized = False

    # -- tool side ------------------------------------------------------------

    def register_tool(self, tool: OmptTool) -> None:
        """Attach a monitoring tool (at most one, like the OMPT ``tool_data``)."""
        if self._tool is not None:
            raise RuntimeError("an OMPT tool is already registered with this runtime")
        self._tool = tool
        self._tool_finalized = False
        tool.initialize(self)

    def unregister_tool(self) -> None:
        if self._tool is not None and not self._tool_finalized:
            self._tool.finalize()
            self._tool_finalized = True
        self._tool = None
        self._callbacks.clear()

    def set_callback(self, event: OmptEvent, callback: OmptCallback) -> None:
        """Register a callback for ``event`` (``ompt_set_callback``)."""
        self._callbacks.setdefault(event, []).append(callback)

    @property
    def has_tool(self) -> bool:
        return self._tool is not None

    # -- runtime side ------------------------------------------------------------

    def dispatch(self, data: OmptEventData) -> None:
        """Invoke every callback registered for ``data.event``."""
        for callback in self._callbacks.get(data.event, ()):
            callback(data)
