"""Simulated MPI layer with PMPI interception.

DLB never changes the number of MPI processes — the paper is explicit that
"MPI processes are never decreased or increased, nor any program data is ever
moved between processes".  What DLB needs from MPI is the **PMPI profiling
interface**: the ability to run code before and after every MPI call, which
gives DROM a dense set of polling points in hybrid applications.

Accordingly this module models:

* :class:`MpiCommunicator` / :class:`MpiRank` — the process structure of a
  job (ranks, sizes, per-node placement), with lightweight in-process
  collectives so examples and tests can exercise realistic call sequences;
* :class:`PmpiLayer` — the interception mechanism: hooks registered for
  *before* / *after* any MPI call;
* :class:`DlbPmpiInterceptor` — DLB acting as a PMPI profiler that polls DROM
  at every interception and forwards new masks to the shared-memory
  programming-model runtime (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Callable

from repro.core.dlb import DlbProcess
from repro.core.errors import DlbError
from repro.cpuset.mask import CpuSet


class MpiCall(Enum):
    """MPI entry points the interception layer distinguishes."""

    INIT = auto()
    FINALIZE = auto()
    SEND = auto()
    RECV = auto()
    BARRIER = auto()
    BCAST = auto()
    REDUCE = auto()
    ALLREDUCE = auto()
    ALLTOALL = auto()
    GATHER = auto()
    WAIT = auto()


PmpiHook = Callable[["MpiRank", MpiCall], None]


class PmpiLayer:
    """Registry of PMPI hooks shared by all ranks of a communicator."""

    def __init__(self) -> None:
        self._before: list[PmpiHook] = []
        self._after: list[PmpiHook] = []
        self.intercepted_calls = 0

    def register(self, before: PmpiHook | None = None, after: PmpiHook | None = None) -> None:
        if before is not None:
            self._before.append(before)
        if after is not None:
            self._after.append(after)

    def run_before(self, rank: "MpiRank", call: MpiCall) -> None:
        self.intercepted_calls += 1
        for hook in self._before:
            hook(rank, call)

    def run_after(self, rank: "MpiRank", call: MpiCall) -> None:
        for hook in self._after:
            hook(rank, call)


@dataclass
class MpiCommunicator:
    """A communicator: an ordered set of ranks belonging to one job."""

    size: int
    job_id: int = 0
    pmpi: PmpiLayer = field(default_factory=PmpiLayer)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("communicator size must be positive")
        self._ranks: list[MpiRank] = [
            MpiRank(rank=i, comm=self) for i in range(self.size)
        ]
        self._mailboxes: dict[tuple[int, int, int], list[Any]] = {}

    def rank(self, index: int) -> "MpiRank":
        return self._ranks[index]

    def ranks(self) -> list["MpiRank"]:
        return list(self._ranks)

    # -- in-process message matching (used by the point-to-point model) ------

    def _post(self, src: int, dest: int, tag: int, payload: Any) -> None:
        self._mailboxes.setdefault((src, dest, tag), []).append(payload)

    def _take(self, src: int, dest: int, tag: int) -> Any:
        queue = self._mailboxes.get((src, dest, tag))
        if not queue:
            raise RuntimeError(
                f"MPI_Recv from rank {src} tag {tag}: no matching message posted "
                "(the simulated MPI matches eagerly; send before receiving)"
            )
        return queue.pop(0)


@dataclass
class MpiRank:
    """One MPI process of a communicator."""

    rank: int
    comm: MpiCommunicator
    calls_made: int = 0

    # -- wrapped MPI calls (all run the PMPI hooks) ---------------------------

    def _wrap(self, call: MpiCall) -> "_InterceptedCall":
        return _InterceptedCall(self, call)

    def init(self) -> None:
        with self._wrap(MpiCall.INIT):
            pass

    def finalize(self) -> None:
        with self._wrap(MpiCall.FINALIZE):
            pass

    def barrier(self) -> None:
        with self._wrap(MpiCall.BARRIER):
            pass

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        with self._wrap(MpiCall.SEND):
            self.comm._post(self.rank, dest, tag, payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        with self._wrap(MpiCall.RECV):
            return self.comm._take(source, self.rank, tag)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        with self._wrap(MpiCall.BCAST):
            return payload

    def allreduce(self, value: float, op: Callable[[float, float], float] = lambda a, b: a + b) -> float:
        with self._wrap(MpiCall.ALLREDUCE):
            # The in-process model has no cross-rank state here; reductions in
            # the app models are computed by the driver.  Returning the local
            # value keeps the call usable as a pure polling point.
            return value

    def wait(self) -> None:
        with self._wrap(MpiCall.WAIT):
            pass


class _InterceptedCall:
    """Context manager running the PMPI before/after hooks around a call."""

    def __init__(self, rank: MpiRank, call: MpiCall) -> None:
        self._rank = rank
        self._call = call

    def __enter__(self) -> None:
        self._rank.calls_made += 1
        self._rank.comm.pmpi.run_before(self._rank, self._call)

    def __exit__(self, *exc: object) -> None:
        self._rank.comm.pmpi.run_after(self._rank, self._call)


class DlbPmpiInterceptor:
    """DLB's PMPI profiler: polls DROM around every MPI call of one rank.

    Parameters
    ----------
    dlb:
        The process-side DLB handle of this rank's process.
    apply_mask:
        Callback that forwards a freshly polled mask to the shared-memory
        runtime (e.g. ``OpenMPRuntime.apply_mask``); without a shared-memory
        programming model DROM cannot change anything, so the callback is
        mandatory.
    """

    def __init__(self, dlb: DlbProcess, apply_mask: Callable[[CpuSet], None]) -> None:
        self._dlb = dlb
        self._apply_mask = apply_mask
        self.updates_applied = 0

    def install(self, comm: MpiCommunicator, rank_index: int) -> None:
        """Register the interceptor for one rank of ``comm``."""

        def before(rank: MpiRank, _call: MpiCall) -> None:
            if rank.rank != rank_index:
                return
            self.poll()

        comm.pmpi.register(before=before)

    def poll(self) -> bool:
        """One DROM poll; applies the mask if an update is pending."""
        code, _ncpus, mask = self._dlb.poll_drom()
        if code is DlbError.DLB_SUCCESS and mask is not None:
            self._apply_mask(mask)
            self.updates_applied += 1
            return True
        return False
