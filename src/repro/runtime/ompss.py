"""Simulated OmpSs (Nanos) runtime with native DLB support.

OmpSs is a task-based programming model: work is decomposed into tasks that a
pool of worker threads executes.  Unlike OpenMP's fork-join regions, the
worker pool can grow or shrink *between any two tasks*, which makes OmpSs
applications malleable at a much finer grain — the runtime simply stops (or
starts) pulling work on a CPU.

The paper's Pils benchmark is MPI+OmpSs and relies on this native DLB support:
the runtime itself polls DROM at task-scheduling points (no OMPT, no
recompilation, just an execution-time option).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.dlb import DlbProcess
from repro.core.errors import DlbError
from repro.cpuset.mask import CpuSet


@dataclass(frozen=True)
class TaskRecord:
    """A task executed by the pool, recorded for inspection/tests."""

    index: int
    worker_cpu: int
    team_size: int


class OmpSsRuntime:
    """Worker-pool model of the Nanos/OmpSs runtime.

    Parameters
    ----------
    mask:
        Initial CPU mask; one worker per CPU.
    dlb:
        Optional process-side DLB handle.  When given (``--enable-dlb`` in the
        real runtime) the pool polls DROM before scheduling each task batch.
    """

    def __init__(self, mask: CpuSet, dlb: DlbProcess | None = None) -> None:
        if mask.is_empty():
            raise ValueError("OmpSs runtime needs a non-empty CPU mask")
        self._mask = mask
        self._dlb = dlb
        self._tasks: list[TaskRecord] = []
        self._rr_cursor = 0
        #: Hook invoked after a DROM update is applied (``callback(mask)``).
        self.on_update: Callable[[CpuSet], None] | None = None
        self.updates_applied = 0

    # -- queries ------------------------------------------------------------

    @property
    def mask(self) -> CpuSet:
        return self._mask

    @property
    def num_workers(self) -> int:
        return self._mask.count()

    def tasks(self) -> list[TaskRecord]:
        return list(self._tasks)

    # -- malleability -----------------------------------------------------------

    def apply_mask(self, mask: CpuSet) -> None:
        """Resize the worker pool immediately (tasks are the natural boundary)."""
        if mask.is_empty():
            raise ValueError("cannot apply an empty mask")
        self._mask = mask
        self._rr_cursor = 0

    def poll_malleability(self) -> bool:
        """Poll DROM (if DLB is enabled) and resize the pool.

        Called by the runtime at task-scheduling points.  Returns True when a
        new mask was applied.
        """
        if self._dlb is None:
            return False
        code, _ncpus, mask = self._dlb.poll_drom()
        if code is DlbError.DLB_SUCCESS and mask is not None:
            self.apply_mask(mask)
            self.updates_applied += 1
            if self.on_update is not None:
                self.on_update(mask)
            return True
        return False

    # -- task execution -----------------------------------------------------------

    def run_tasks(self, ntasks: int) -> list[TaskRecord]:
        """Schedule ``ntasks`` tasks round-robin over the current workers.

        DROM is polled once per batch (the scheduling point), mirroring the
        Nanos integration where the poll happens when the scheduler looks for
        ready work.
        """
        if ntasks < 0:
            raise ValueError("ntasks must be non-negative")
        self.poll_malleability()
        executed: list[TaskRecord] = []
        cpus = list(self._mask)
        for _ in range(ntasks):
            cpu = cpus[self._rr_cursor % len(cpus)]
            self._rr_cursor += 1
            record = TaskRecord(
                index=len(self._tasks), worker_cpu=cpu, team_size=len(cpus)
            )
            self._tasks.append(record)
            executed.append(record)
        return executed
