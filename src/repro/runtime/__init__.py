"""Programming-model substrates: OpenMP (+OMPT), OmpSs, MPI (+PMPI).

These are the runtimes the paper integrates DROM with (Section 4).  They are
behavioural models, not real thread pools: they track exactly the state DROM
interacts with — team sizes, CPU pinning, task pools, interception hooks — so
that mask changes propagate with the same semantics (and the same latency,
i.e. at the next parallel construct / task / MPI call) as in the real stack.
"""

from repro.runtime.mpi import (
    DlbPmpiInterceptor,
    MpiCall,
    MpiCommunicator,
    MpiRank,
    PmpiLayer,
)
from repro.runtime.ompss import OmpSsRuntime, TaskRecord
from repro.runtime.ompt import OmptCapableRuntime, OmptEvent, OmptEventData, OmptTool
from repro.runtime.openmp import DlbOmptTool, OpenMPRuntime, ParallelRegion
from repro.runtime.process import ApplicationProcess, ProcessSpec, ThreadModel

__all__ = [
    "ApplicationProcess",
    "ProcessSpec",
    "ThreadModel",
    "OpenMPRuntime",
    "ParallelRegion",
    "DlbOmptTool",
    "OmpSsRuntime",
    "TaskRecord",
    "OmptCapableRuntime",
    "OmptEvent",
    "OmptEventData",
    "OmptTool",
    "MpiCommunicator",
    "MpiRank",
    "MpiCall",
    "PmpiLayer",
    "DlbPmpiInterceptor",
]
