"""Application-process abstraction used by the workload models.

One :class:`ApplicationProcess` corresponds to one MPI rank of a job running
on one node: it owns

* a process-side DLB handle (:class:`~repro.core.dlb.DlbProcess`),
* a shared-memory programming-model runtime (OpenMP or OmpSs) that actually
  reacts to mask changes,
* optionally an MPI rank with the DLB PMPI interceptor installed.

The application models in :mod:`repro.apps` drive these objects: every
iteration they hit a malleability point (a PMPI interception, an OMPT
parallel-begin, or a manual ``DLB_PollDROM``), so a mask written by the SLURM
plugin is picked up within one iteration — the same latency the paper's
polling mechanism has.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable

from repro.core.dlb import DlbProcess
from repro.core.errors import DlbError
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.mask import CpuSet
from repro.runtime.mpi import DlbPmpiInterceptor, MpiCommunicator
from repro.runtime.ompss import OmpSsRuntime
from repro.runtime.openmp import DlbOmptTool, OpenMPRuntime


class ThreadModel(Enum):
    """Which shared-memory programming model the process runs."""

    OPENMP = auto()
    OMPSS = auto()
    #: No shared-memory model: the process can be registered with DLB but its
    #: thread count cannot change (a non-malleable process).
    NONE = auto()


@dataclass(frozen=True)
class ProcessSpec:
    """Static description of one application process."""

    pid: int
    node: str
    mpi_rank: int
    thread_model: ThreadModel
    initial_mask: CpuSet


class ApplicationProcess:
    """A running MPI rank with DLB/DROM support on one node."""

    def __init__(
        self,
        spec: ProcessSpec,
        shmem: NodeSharedMemory,
        comm: MpiCommunicator | None = None,
        environ: dict[str, str] | None = None,
    ) -> None:
        self.spec = spec
        self.shmem = shmem
        self.dlb = DlbProcess(
            pid=spec.pid, shmem=shmem, mask=spec.initial_mask, environ=environ or {}
        )
        self.comm = comm
        self.openmp: OpenMPRuntime | None = None
        self.ompss: OmpSsRuntime | None = None
        self._ompt_tool: DlbOmptTool | None = None
        self._pmpi: DlbPmpiInterceptor | None = None
        self._mask_listeners: list[Callable[[CpuSet], None]] = []
        self._started = False
        self._finished = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Register with DLB and build the programming-model runtime."""
        if self._started:
            raise RuntimeError(f"process {self.spec.pid} already started")
        code = self.dlb.init()
        if code.is_error():
            raise RuntimeError(f"DLB_Init failed for pid {self.spec.pid}: {code.name}")
        mask = self.dlb.current_mask()

        if self.spec.thread_model is ThreadModel.OPENMP:
            self.openmp = OpenMPRuntime(mask)
            self._ompt_tool = DlbOmptTool(self.dlb)
            self._ompt_tool.on_update = self._notify_mask
            self.openmp.register_tool(self._ompt_tool)
        elif self.spec.thread_model is ThreadModel.OMPSS:
            self.ompss = OmpSsRuntime(mask, dlb=self.dlb)
            self.ompss.on_update = self._notify_mask

        if self.comm is not None and self.spec.thread_model is not ThreadModel.NONE:
            self._pmpi = DlbPmpiInterceptor(self.dlb, self._apply_mask)
            self._pmpi.install(self.comm, self.spec.mpi_rank)

        self._started = True

    def finish(self) -> None:
        """Unregister from DLB (application exit)."""
        if not self._started or self._finished:
            return
        if self.openmp is not None:
            self.openmp.unregister_tool()
        self.dlb.finalize()
        self._finished = True

    @property
    def started(self) -> bool:
        return self._started

    @property
    def finished(self) -> bool:
        return self._finished

    # -- masks and threads -----------------------------------------------------------

    @property
    def current_mask(self) -> CpuSet:
        """Mask the process is currently *using* (runtime view)."""
        if self.openmp is not None:
            return self.openmp.mask
        if self.ompss is not None:
            return self.ompss.mask
        return self.dlb.current_mask() if self.dlb.initialized else self.spec.initial_mask

    @property
    def num_threads(self) -> int:
        """Current size of the shared-memory worker team."""
        return self.current_mask.count()

    def on_mask_change(self, callback: Callable[[CpuSet], None]) -> None:
        """Register a listener fired whenever the runtime adopts a new mask."""
        self._mask_listeners.append(callback)

    def _notify_mask(self, mask: CpuSet) -> None:
        for listener in self._mask_listeners:
            listener(mask)

    def _apply_mask(self, mask: CpuSet) -> None:
        if self.openmp is not None:
            self.openmp.set_num_threads(mask.count())
            self.openmp.apply_mask(mask)
        elif self.ompss is not None:
            self.ompss.apply_mask(mask)
        self._notify_mask(mask)

    # -- malleability points -------------------------------------------------------------

    def poll_malleability(self) -> bool:
        """Hit one malleability point: poll DROM and react.

        This is what an application iteration does — through PMPI, OMPT or the
        manual API depending on the integration.  Returns True when a new mask
        was adopted.
        """
        if not self._started:
            raise RuntimeError("process not started")
        if self.spec.thread_model is ThreadModel.NONE:
            # Non-malleable process: it may poll but cannot react.
            code, _n, _mask = self.dlb.poll_drom()
            return False
        code, _ncpus, mask = self.dlb.poll_drom()
        if code is DlbError.DLB_SUCCESS and mask is not None:
            self._apply_mask(mask)
            return True
        return False

    def enter_parallel_region(self) -> int:
        """Convenience for OpenMP processes: open+close one parallel region.

        Returns the team size used (after any DROM update applied at the OMPT
        parallel-begin callback).
        """
        if self.openmp is None:
            raise RuntimeError("process does not run OpenMP")
        with self.openmp.parallel_region() as region:
            return region.team_size
