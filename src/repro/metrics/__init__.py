"""Metrics: system-level timings, hardware-counter proxies, tracing, Paraver views."""

from repro.metrics.collect import JobMetrics, WorkloadMetrics, relative_improvement
from repro.metrics.counters import CounterLog, CounterSample
from repro.metrics.paraver import ParaverView, TimelineRow
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer

__all__ = [
    "JobMetrics",
    "WorkloadMetrics",
    "relative_improvement",
    "CounterLog",
    "CounterSample",
    "Tracer",
    "StepRecord",
    "MaskChangeRecord",
    "ParaverView",
    "TimelineRow",
]
