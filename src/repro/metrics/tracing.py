"""Extrae-like execution tracing.

The paper obtains application metrics "by tracing the use cases using Extrae
and visualizing traces with Paraver".  The tracer below records one
:class:`StepRecord` per rank per execution step (the malleability-point
granularity of the simulation) plus mask-change events; Figure 5's per-thread
utilisation view, Figure 13's timelines and the counter log all derive from
it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.metrics.counters import CounterLog, CounterSample
from repro.sim.events import EventLog


class StepRecord(NamedTuple):
    """One execution step of one rank.

    A ``NamedTuple`` rather than a dataclass: the runner constructs one of
    these per rank per step on the simulation hot path, and tuple
    construction is several times cheaper than a frozen dataclass ``__init__``
    while keeping the record immutable, hashable and field-comparable.
    """

    job: str
    rank: int
    node: str
    start: float
    duration: float
    phase: str
    nthreads: int
    #: Per-thread busy fraction during the step (length == nthreads).
    thread_utilisation: tuple[float, ...]
    ipc: float
    work_units: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_record(self) -> dict:
        """JSON-able representation (the JSONL sink / trace-store schema).

        Floats serialise via ``repr`` (shortest-round-trip exact), so a step
        survives the JSON round trip with exact float equality.
        """
        return {
            "record": "step",
            "job": self.job,
            "rank": self.rank,
            "node": self.node,
            "start": self.start,
            "duration": self.duration,
            "phase": self.phase,
            "nthreads": self.nthreads,
            "thread_utilisation": list(self.thread_utilisation),
            "ipc": self.ipc,
            "work_units": self.work_units,
        }

    @classmethod
    def from_record(cls, record: dict) -> "StepRecord":
        payload = {k: v for k, v in record.items() if k != "record"}
        payload["thread_utilisation"] = tuple(payload["thread_utilisation"])
        return cls(**payload)


class MaskChangeRecord(NamedTuple):
    """A DROM mask change observed by a rank."""

    job: str
    rank: int
    time: float
    old_threads: int
    new_threads: int

    def to_record(self) -> dict:
        """JSON-able representation (the JSONL sink / trace-store schema)."""
        return {
            "record": "mask_change",
            "job": self.job,
            "rank": self.rank,
            "time": self.time,
            "old_threads": self.old_threads,
            "new_threads": self.new_threads,
        }

    @classmethod
    def from_record(cls, record: dict) -> "MaskChangeRecord":
        return cls(**{k: v for k, v in record.items() if k != "record"})


#: Canonical presentation order of step records: by start instant, then job
#: label, then rank.  Recording order is an artifact of event interleaving —
#: a job that batches k steps appends them at its wake, a single-stepping job
#: appends one record per wake — so every view (queries, figure renderings,
#: sink and store serialisations) reads through this order instead, making
#: batched and unbatched executions of the same scenario indistinguishable.
def _step_order(step: StepRecord) -> tuple[float, str, int]:
    return (step.start, step.job, step.rank)


class Tracer:
    """Collects step and mask-change records for a whole scenario run."""

    def __init__(self, cycles_per_us: float = 2600.0) -> None:
        self._steps: list[StepRecord] = []
        #: Lazily sorted canonical view of ``_steps`` (None = dirty).
        self._ordered_steps: list[StepRecord] | None = []
        self._mask_changes: list[MaskChangeRecord] = []
        self._cycles_per_us = cycles_per_us
        self.events = EventLog()

    @property
    def cycles_per_us(self) -> float:
        """Nominal cycles/µs the counter log scales by — persisted with the
        trace so a replayed tracer derives identical counter samples."""
        return self._cycles_per_us

    # -- recording -------------------------------------------------------------

    def record_step(self, record: StepRecord) -> None:
        self._steps.append(record)
        self._ordered_steps = None

    def record_steps(self, records: Iterable[StepRecord]) -> None:
        """Append a whole batch of step records in one call.

        The batched runner hands over one list per (job, batch); the
        canonical order presented by the queries is unaffected by how the
        records were chunked.
        """
        self._steps.extend(records)
        self._ordered_steps = None

    def record_mask_change(self, record: MaskChangeRecord) -> None:
        self._mask_changes.append(record)

    # -- queries ------------------------------------------------------------------

    def _ordered(self) -> list[StepRecord]:
        if self._ordered_steps is None:
            self._ordered_steps = sorted(self._steps, key=_step_order)
        return self._ordered_steps

    def steps(self, job: str | None = None, rank: int | None = None) -> list[StepRecord]:
        out = self._ordered()
        if job is not None:
            out = [s for s in out if s.job == job]
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        return list(out)

    def mask_changes(self, job: str | None = None) -> list[MaskChangeRecord]:
        if job is None:
            return list(self._mask_changes)
        return [m for m in self._mask_changes if m.job == job]

    def jobs(self) -> list[str]:
        seen: list[str] = []
        for step in self._ordered():
            if step.job not in seen:
                seen.append(step.job)
        return seen

    def span(self, job: str) -> tuple[float, float]:
        """First start and last end of a job's steps."""
        steps = self.steps(job)
        if not steps:
            raise ValueError(f"no steps recorded for job {job!r}")
        return min(s.start for s in steps), max(s.end for s in steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[StepRecord]:
        return iter(self._ordered())

    # -- derived views ----------------------------------------------------------------

    def thread_utilisation(self, job: str, rank: int) -> dict[int, float]:
        """Time-weighted busy fraction per thread over the rank's whole run.

        This is the quantity Figure 5 visualises: after shrinking, the threads
        that pick up the orphaned chunks stay at 1.0 while the others show
        idle gaps.
        """
        steps = self.steps(job, rank)
        if not steps:
            raise ValueError(f"no steps recorded for job {job!r} rank {rank}")
        busy: dict[int, float] = {}
        total: dict[int, float] = {}
        for step in steps:
            for thread, util in enumerate(step.thread_utilisation):
                busy[thread] = busy.get(thread, 0.0) + util * step.duration
                total[thread] = total.get(thread, 0.0) + step.duration
        return {t: busy[t] / total[t] for t in sorted(busy)}

    def counter_log(self) -> CounterLog:
        """Expand step records into per-thread counter samples (Figures 13/14)."""
        log = CounterLog()
        for step in self._ordered():
            for thread, util in enumerate(step.thread_utilisation):
                log.record(
                    CounterSample(
                        job=step.job,
                        rank=step.rank,
                        thread=thread,
                        start=step.start,
                        duration=step.duration,
                        ipc=step.ipc * util,
                        cycles_per_us=self._cycles_per_us * util,
                    )
                )
        return log

    def merge(self, other: "Tracer") -> None:
        """Absorb another tracer's records (used when scenarios are composed)."""
        self._steps.extend(other._steps)
        self._ordered_steps = None
        self._mask_changes.extend(other._mask_changes)
