"""System-level metrics (Section 6's measurement definitions).

The paper evaluates workloads with:

* **Total run time** — last job end time minus first job submission time.
* **Response time** — per job, wait time in the queue plus execution time.
* **Average response time** — arithmetic mean of the response times of all
  jobs in the workload.

These are computed from the :class:`~repro.slurm.jobs.Job` records the
workload runner produces (the equivalent of reading them from SLURM logs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.slurm.jobs import Job, JobState


@dataclass(frozen=True)
class JobMetrics:
    """Per-job timing summary."""

    job_id: int
    name: str
    submit_time: float
    start_time: float
    end_time: float

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        return self.end_time - self.start_time

    @property
    def response_time(self) -> float:
        return self.end_time - self.submit_time


@dataclass(frozen=True)
class WorkloadMetrics:
    """Workload-level summary computed from the finished jobs."""

    jobs: tuple[JobMetrics, ...]

    @classmethod
    def from_jobs(cls, jobs: Iterable[Job]) -> "WorkloadMetrics":
        records = []
        for job in jobs:
            if job.state is not JobState.COMPLETED:
                raise ValueError(
                    f"job {job.job_id} ({job.spec.name!r}) has not completed; "
                    "metrics are only defined for finished workloads"
                )
            records.append(
                JobMetrics(
                    job_id=job.job_id,
                    name=job.spec.name,
                    submit_time=job.submit_time,
                    start_time=job.start_time if job.start_time is not None else 0.0,
                    end_time=job.end_time if job.end_time is not None else 0.0,
                )
            )
        if not records:
            raise ValueError("cannot compute metrics of an empty workload")
        return cls(jobs=tuple(records))

    # -- the paper's metrics ------------------------------------------------------

    @property
    def total_run_time(self) -> float:
        """Last job end time minus first job submission time."""
        return max(j.end_time for j in self.jobs) - min(j.submit_time for j in self.jobs)

    @property
    def average_response_time(self) -> float:
        return sum(j.response_time for j in self.jobs) / len(self.jobs)

    @property
    def makespan_end(self) -> float:
        return max(j.end_time for j in self.jobs)

    def response_times(self) -> Mapping[str, float]:
        """Per-job response time keyed by job name."""
        return {j.name: j.response_time for j in self.jobs}

    def run_times(self) -> Mapping[str, float]:
        return {j.name: j.run_time for j in self.jobs}

    def wait_times(self) -> Mapping[str, float]:
        return {j.name: j.wait_time for j in self.jobs}

    def job(self, name: str) -> JobMetrics:
        for record in self.jobs:
            if record.name == name:
                return record
        raise KeyError(f"no job named {name!r} in the workload")


def relative_improvement(baseline: float, improved: float) -> float:
    """Relative gain of ``improved`` over ``baseline`` (positive = better).

    The paper reports gains as "(Serial - DROM) / Serial": e.g. a DROM total
    run time 8 % lower than the Serial one is a 0.08 improvement.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline
