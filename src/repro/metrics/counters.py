"""Hardware-counter style application metrics: IPC and cycles per microsecond.

The paper traces the use cases with Extrae and reports, per thread,

* **IPC** — instructions completed per processor cycle;
* **cycles per microsecond** — processor cycles dedicated to the thread per
  microsecond (a proxy for "how much of the CPU the thread actually got",
  the colour scale of Figure 13).

Here the counters are synthesised from the performance model at every
execution step and collected per (job, rank, thread); Figure 14's per-thread
IPC histograms and Figure 13's cycles/µs timelines are derived from this log.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class CounterSample:
    """Counters of one thread during one execution step."""

    job: str
    rank: int
    thread: int
    start: float
    duration: float
    ipc: float
    cycles_per_us: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class CounterLog:
    """Accumulates counter samples and answers the figures' queries."""

    def __init__(self) -> None:
        self._samples: list[CounterSample] = []

    def record(self, sample: CounterSample) -> None:
        if sample.duration < 0:
            raise ValueError("sample duration must be non-negative")
        self._samples.append(sample)

    def extend(self, samples: Iterable[CounterSample]) -> None:
        for sample in samples:
            self.record(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[CounterSample]:
        return iter(self._samples)

    def jobs(self) -> list[str]:
        seen: list[str] = []
        for sample in self._samples:
            if sample.job not in seen:
                seen.append(sample.job)
        return seen

    def for_job(self, job: str) -> list[CounterSample]:
        return [s for s in self._samples if s.job == job]

    # -- Figure 14: per-thread IPC histograms ---------------------------------------

    def ipc_samples_by_thread(self, job: str) -> dict[tuple[int, int], list[float]]:
        """(rank, thread) -> list of IPC samples, duration-weighted by repetition."""
        result: dict[tuple[int, int], list[float]] = defaultdict(list)
        for sample in self.for_job(job):
            result[(sample.rank, sample.thread)].append(sample.ipc)
        return dict(result)

    def ipc_histogram(
        self, job: str, bins: int = 20, range_: tuple[float, float] = (0.0, 2.0)
    ) -> dict[tuple[int, int], np.ndarray]:
        """Per-thread histogram of IPC values (counts per bin)."""
        histograms: dict[tuple[int, int], np.ndarray] = {}
        for key, values in self.ipc_samples_by_thread(job).items():
            counts, _edges = np.histogram(np.asarray(values), bins=bins, range=range_)
            histograms[key] = counts
        return histograms

    def mean_ipc(self, job: str) -> float:
        """Duration-weighted mean IPC over all threads of a job."""
        samples = self.for_job(job)
        if not samples:
            raise ValueError(f"no counter samples for job {job!r}")
        total_time = sum(s.duration for s in samples)
        if total_time == 0:
            return float(np.mean([s.ipc for s in samples]))
        return sum(s.ipc * s.duration for s in samples) / total_time

    def most_frequent_ipc(self, job: str, bins: int = 40) -> float:
        """Centre of the most populated IPC bin ("the blue dots" of Figure 14)."""
        samples = [s.ipc for s in self.for_job(job)]
        if not samples:
            raise ValueError(f"no counter samples for job {job!r}")
        counts, edges = np.histogram(np.asarray(samples), bins=bins)
        idx = int(np.argmax(counts))
        return float((edges[idx] + edges[idx + 1]) / 2.0)

    # -- Figure 13: cycles per microsecond timeline ------------------------------------

    def cycles_timeline(
        self, job: str, bin_seconds: float = 50.0
    ) -> dict[tuple[int, int], np.ndarray]:
        """(rank, thread) -> time-binned average cycles/µs (0 where idle)."""
        samples = self.for_job(job)
        if not samples:
            return {}
        horizon = max(s.end for s in samples)
        nbins = int(np.ceil(horizon / bin_seconds)) + 1
        acc: dict[tuple[int, int], np.ndarray] = defaultdict(lambda: np.zeros(nbins))
        weight: dict[tuple[int, int], np.ndarray] = defaultdict(lambda: np.zeros(nbins))
        for s in samples:
            key = (s.rank, s.thread)
            first = int(s.start // bin_seconds)
            last = int(s.end // bin_seconds)
            for b in range(first, last + 1):
                lo = max(s.start, b * bin_seconds)
                hi = min(s.end, (b + 1) * bin_seconds)
                if hi <= lo:
                    continue
                acc[key][b] += s.cycles_per_us * (hi - lo)
                weight[key][b] += hi - lo
        result: dict[tuple[int, int], np.ndarray] = {}
        for key in acc:
            with np.errstate(invalid="ignore", divide="ignore"):
                result[key] = np.where(weight[key] > 0, acc[key] / np.maximum(weight[key], 1e-12), 0.0)
        return result
