"""Paraver-like trace analysis and ASCII rendering.

Paraver displays one row per thread with time on the X axis and a colour per
metric value.  The functions here produce the same views as text: a
per-thread timeline of thread counts or cycles/µs, binned over time, rendered
with a small character ramp.  They back the Figure 5 and Figure 13 benchmark
output and the `examples/insitu_analytics.py` visualisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.tracing import Tracer

#: Character ramp from idle to fully busy.
_RAMP = " .:-=+*#%@"


def _ramp_char(value: float, maximum: float) -> str:
    if maximum <= 0:
        return _RAMP[0]
    idx = int(round((len(_RAMP) - 1) * max(0.0, min(1.0, value / maximum))))
    return _RAMP[idx]


@dataclass(frozen=True)
class TimelineRow:
    """One rendered row of a timeline."""

    label: str
    values: np.ndarray

    def render(self, maximum: float) -> str:
        return "".join(_ramp_char(v, maximum) for v in self.values)


class ParaverView:
    """Builds binned per-thread timelines from a :class:`Tracer`."""

    def __init__(self, tracer: Tracer, bin_seconds: float = 50.0) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self.tracer = tracer
        self.bin_seconds = bin_seconds

    # -- timelines -------------------------------------------------------------------

    def horizon(self) -> float:
        ends = [step.end for step in self.tracer]
        return max(ends) if ends else 0.0

    def _nbins(self) -> int:
        return int(np.ceil(self.horizon() / self.bin_seconds)) + 1

    def thread_activity(self, job: str) -> list[TimelineRow]:
        """One row per (rank, thread): time-binned busy fraction."""
        nbins = self._nbins()
        rows: dict[tuple[int, int], np.ndarray] = {}
        weights: dict[tuple[int, int], np.ndarray] = {}
        for step in self.tracer.steps(job):
            for thread, util in enumerate(step.thread_utilisation):
                key = (step.rank, thread)
                rows.setdefault(key, np.zeros(nbins))
                weights.setdefault(key, np.zeros(nbins))
                first = int(step.start // self.bin_seconds)
                last = int(step.end // self.bin_seconds)
                for b in range(first, last + 1):
                    lo = max(step.start, b * self.bin_seconds)
                    hi = min(step.end, (b + 1) * self.bin_seconds)
                    if hi <= lo:
                        continue
                    rows[key][b] += util * (hi - lo)
                    weights[key][b] += hi - lo
        out: list[TimelineRow] = []
        for key in sorted(rows):
            with np.errstate(invalid="ignore", divide="ignore"):
                values = np.where(weights[key] > 0, rows[key] / np.maximum(weights[key], 1e-12), 0.0)
            out.append(TimelineRow(label=f"{job} r{key[0]} t{key[1]}", values=values))
        return out

    def job_thread_count(self, job: str) -> TimelineRow:
        """Aggregate thread count of a job over time (the Figure 3/13 shape)."""
        nbins = self._nbins()
        values = np.zeros(nbins)
        weights = np.zeros(nbins)
        for step in self.tracer.steps(job):
            first = int(step.start // self.bin_seconds)
            last = int(step.end // self.bin_seconds)
            for b in range(first, last + 1):
                lo = max(step.start, b * self.bin_seconds)
                hi = min(step.end, (b + 1) * self.bin_seconds)
                if hi <= lo:
                    continue
                values[b] += step.nthreads * (hi - lo)
                weights[b] += hi - lo
        with np.errstate(invalid="ignore", divide="ignore"):
            averaged = np.where(weights > 0, values / np.maximum(weights, 1e-12), 0.0)
        return TimelineRow(label=job, values=averaged)

    # -- rendering ----------------------------------------------------------------------

    def render_thread_activity(self, job: str) -> str:
        """ASCII rendering of per-thread utilisation (the Figure 5 view)."""
        rows = self.thread_activity(job)
        if not rows:
            return f"(no trace data for {job})"
        width = max(len(row.label) for row in rows)
        lines = [f"{row.label:<{width}} |{row.render(1.0)}|" for row in rows]
        return "\n".join(lines)

    def render_job_widths(self, jobs: list[str]) -> str:
        """ASCII rendering of per-job thread counts over time (Figure 13 shape)."""
        rows = [self.job_thread_count(job) for job in jobs]
        maximum = max((row.values.max() for row in rows if row.values.size), default=1.0)
        width = max(len(row.label) for row in rows)
        lines = [f"{row.label:<{width}} |{row.render(maximum)}|" for row in rows]
        header = f"{'':<{width}}  one column = {self.bin_seconds:.0f}s"
        return "\n".join([header, *lines])
