"""repro — a Python reproduction of *DROM: Enabling Efficient and Effortless
Malleability for Resource Managers* (D'Amico et al., ICPP 2018).

The package implements the paper's contribution — the DROM module of the DLB
library, an API that lets a resource manager change the CPUs owned by a
running process — together with every substrate the evaluation needs:

``repro.core``
    The DLB framework: per-node shared memory, the DROM administrator API,
    the process-side ``DLB_Init``/``DLB_PollDROM`` handle and the LeWI module.
``repro.cpuset``
    CPU masks, node/cluster topologies (MareNostrum III) and the mask
    distribution policies of the DROM-enabled SLURM plugin.
``repro.runtime``
    Programming-model substrates: OpenMP (+OMPT), OmpSs and MPI (+PMPI) with
    DLB interception.
``repro.slurm``
    Simulated SLURM: controller, node daemon, step daemon and the
    task/affinity plugin extended with DROM (Section 5 of the paper).
``repro.sim``, ``repro.apps``, ``repro.metrics``
    A deterministic discrete-event engine, analytic application models
    (NEST, CoreNeuron, Pils, STREAM) and the paper's metrics/tracing.
``repro.workload``, ``repro.experiments``
    Table-1 configurations, the Serial/DROM scenario runner and the drivers
    that regenerate every figure of the evaluation.

Quick start::

    from repro.workload import in_situ_workload, run_both_scenarios

    workload = in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2")
    results = run_both_scenarios(workload)
    print(results["serial"].metrics.total_run_time,
          results["drom"].metrics.total_run_time)
"""

from repro.core import (
    DlbError,
    DlbProcess,
    DromAdmin,
    DromFlags,
    LewiModule,
    NodeSharedMemory,
    attach_admin,
)
from repro.cpuset import ClusterTopology, CpuSet, NodeTopology

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CpuSet",
    "NodeTopology",
    "ClusterTopology",
    "NodeSharedMemory",
    "DromAdmin",
    "DlbProcess",
    "DromFlags",
    "DlbError",
    "LewiModule",
    "attach_admin",
]
