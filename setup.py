"""Legacy setup shim.

The reproduction environment is offline and has no ``wheel`` package, so the
PEP 517/660 editable-install path (which builds a wheel) is unavailable.
Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the classic
``setup.py develop`` route; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Python reproduction of 'DROM: Enabling Efficient and Effortless "
        "Malleability for Resource Managers' (ICPP 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
